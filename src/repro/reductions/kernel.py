"""Exact reduction rules (kernelization) with solution reconstruction.

The rules implemented here never change the independence number they
account for:

``isolated`` (degree 0)
    The vertex is in some maximum independent set; take it.
``pendant`` (degree 1)
    The vertex is in some maximum independent set; take it and delete its
    neighbour.
``triangle`` (degree 2, adjacent neighbours)
    Taking the degree-2 vertex is never worse than taking either
    neighbour; take it and delete both neighbours.
``fold`` (degree 2, non-adjacent neighbours)
    Fold the vertex ``v`` and its neighbours ``u, w`` into one new vertex
    whose neighbourhood is ``(N(u) ∪ N(w)) \\ {v, u, w}``.  A maximum
    independent set of the folded graph extends to one of the original
    graph: if the folded vertex is selected, replace it by ``{u, w}``,
    otherwise add ``v``.

Reductions operate on *tokens*: original vertex ids plus fresh ids created
by folds, so folds can stack on top of each other; reconstruction unwinds
them in reverse order.

The candidate sweep runs off the graph's cached CSR degree arrays: the
initial worklist is one vectorized ``degree <= 2`` filter, degrees are
maintained incrementally in a flat array over tokens, and adjacency sets
are never materialised per vertex — liveness is a boolean mask over the
zero-copy CSR neighbour slices, with only the fold-created edges held in
an explicit overlay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.result import MISResult
from repro.errors import SolverError
from repro.graphs.graph import HAVE_NUMPY, Graph
from repro.storage.io_stats import IOStats

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["ReductionStats", "ReducedGraph", "reduce_graph", "reduced_mis"]


@dataclass
class ReductionStats:
    """How often each reduction rule fired."""

    isolated: int = 0
    pendant: int = 0
    triangle: int = 0
    folds: int = 0

    @property
    def total(self) -> int:
        """Total number of rule applications."""

        return self.isolated + self.pendant + self.triangle + self.folds


@dataclass
class _Fold:
    """One degree-2 fold: ``folded`` replaces ``{vertex, left, right}``."""

    folded: int
    vertex: int
    left: int
    right: int


@dataclass
class ReducedGraph:
    """The kernel produced by :func:`reduce_graph` plus reconstruction data.

    Attributes
    ----------
    kernel:
        The reduced graph over compact vertex ids ``0 .. k-1``.
    kernel_tokens:
        Maps each kernel vertex id to its token (an original vertex id or a
        fold token).
    forced_tokens:
        Tokens forced into the independent set by the reductions.
    folds:
        Fold records in application order.
    stats:
        Rule-application counters.
    original_vertices:
        Vertex count of the original graph (for sanity checks).
    """

    kernel: Graph
    kernel_tokens: Tuple[int, ...]
    forced_tokens: FrozenSet[int]
    folds: Tuple[_Fold, ...]
    stats: ReductionStats
    original_vertices: int

    @property
    def kernel_size(self) -> int:
        """Number of vertices remaining in the kernel."""

        return self.kernel.num_vertices

    @property
    def guaranteed_gain(self) -> int:
        """Vertices the reductions already secured (forced picks + one per fold)."""

        return len(self.forced_tokens) + len(self.folds)

    def reconstruct(self, kernel_solution: Iterable[int]) -> FrozenSet[int]:
        """Lift a kernel independent set back to the original graph."""

        selected: Set[int] = set(self.forced_tokens)
        for kernel_vertex in kernel_solution:
            if not 0 <= kernel_vertex < len(self.kernel_tokens):
                raise SolverError(
                    f"kernel vertex {kernel_vertex} is outside the kernel of size "
                    f"{len(self.kernel_tokens)}"
                )
            selected.add(self.kernel_tokens[kernel_vertex])
        for fold in reversed(self.folds):
            if fold.folded in selected:
                selected.discard(fold.folded)
                selected.add(fold.left)
                selected.add(fold.right)
            else:
                selected.add(fold.vertex)
        if any(token >= self.original_vertices for token in selected):  # pragma: no cover
            raise SolverError("reconstruction left an unresolved fold token in the solution")
        return frozenset(selected)

    def to_payload(self) -> dict:
        """JSON-serializable form (kernel edges + reconstruction data).

        Checkpoints embed this so a resumed run can restore the kernel
        graph and the fold/forced bookkeeping without re-reading the input
        or re-running the reduction sweep.
        """

        # Edges and folds are stored as flat int arrays (sources/targets,
        # 4-tuples run together) rather than lists of pairs: the
        # checkpoint format binary-packs long int lists into its arrays
        # section, and flat layouts are what make a big kernel artifact
        # compress instead of bloating the JSON payload.
        edge_sources: list = []
        edge_targets: list = []
        for u, w in self.kernel.iter_edges():
            edge_sources.append(u)
            edge_targets.append(w)
        flat_folds: list = []
        for fold in self.folds:
            flat_folds.extend((fold.folded, fold.vertex, fold.left, fold.right))
        return {
            "kernel_vertices": self.kernel.num_vertices,
            "kernel_edge_sources": edge_sources,
            "kernel_edge_targets": edge_targets,
            "kernel_tokens": list(self.kernel_tokens),
            "forced_tokens": sorted(self.forced_tokens),
            "folds": flat_folds,
            "stats": {
                "isolated": self.stats.isolated,
                "pendant": self.stats.pendant,
                "triangle": self.stats.triangle,
                "folds": self.stats.folds,
            },
            "original_vertices": self.original_vertices,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ReducedGraph":
        """Inverse of :meth:`to_payload`."""

        kernel = Graph(
            int(payload["kernel_vertices"]),
            list(
                zip(
                    (int(u) for u in payload["kernel_edge_sources"]),
                    (int(w) for w in payload["kernel_edge_targets"]),
                )
            ),
        )
        flat_folds = [int(value) for value in payload["folds"]]
        return cls(
            kernel=kernel,
            kernel_tokens=tuple(int(t) for t in payload["kernel_tokens"]),
            forced_tokens=frozenset(int(t) for t in payload["forced_tokens"]),
            folds=tuple(
                _Fold(
                    folded=flat_folds[i],
                    vertex=flat_folds[i + 1],
                    left=flat_folds[i + 2],
                    right=flat_folds[i + 3],
                )
                for i in range(0, len(flat_folds), 4)
            ),
            stats=ReductionStats(**payload["stats"]),
            original_vertices=int(payload["original_vertices"]),
        )


def reduce_graph(graph: Graph) -> ReducedGraph:
    """Apply the isolated / pendant / triangle / fold rules exhaustively.

    The sweep never materialises per-vertex adjacency sets: degrees live
    in one flat array over tokens (seeded from the graph's cached CSR
    degrees), a vertex's live neighbourhood is its zero-copy CSR slice
    filtered by an ``alive`` mask, and only fold-created edges are stored
    explicitly.  Every fold removes three vertices and adds one token, so
    at most ``n // 2`` tokens beyond the original ids can ever exist.
    """

    n = graph.num_vertices
    capacity = n + n // 2 + 2
    # Flat per-token scalars as plain Python lists: the rule loop touches
    # them item-wise millions of times, where list indexing beats ndarray
    # scalar access several-fold.  The ndarrays are used where they win —
    # the vectorized worklist seeding below and the CSR degree source.
    deg: List[int] = list(graph.degrees()) + [0] * (capacity - n)
    alive: List[bool] = [True] * n + [False] * (capacity - n)
    csr_offsets, csr_targets = graph.csr_arrays()
    if _np is not None:
        offsets_list = csr_offsets.tolist()
        targets_list = csr_targets.tolist()
    else:
        offsets_list = list(csr_offsets)
        targets_list = list(csr_targets)
    # Fold-created edges (always incident to a token >= n), symmetric.
    extra: Dict[int, Set[int]] = {}
    next_token = n
    forced: Set[int] = set()
    folds: List[_Fold] = []
    stats = ReductionStats()

    def live_neighbors(vertex: int) -> List[int]:
        """Current neighbours of ``vertex`` (CSR part ascending, overlay unordered)."""

        if vertex < n:
            out = [
                w
                for w in targets_list[offsets_list[vertex] : offsets_list[vertex + 1]]
                if alive[w]
            ]
        else:
            out = []
        added = extra.get(vertex)
        if added:
            out.extend(w for w in added if alive[w])
        return out

    def has_live_edge(u: int, w: int) -> bool:
        if u < n and w < n:
            return graph.has_edge(u, w)
        added = extra.get(u)
        return bool(added and w in added)

    # Worklist seeded by one vectorized degree filter; rule applications
    # re-schedule any vertex whose degree drops into the reducible range.
    if _np is not None:
        pending: List[int] = _np.flatnonzero(graph.degrees_array() <= 2).tolist()
    else:
        pending = [v for v in range(n) if deg[v] <= 2]
    in_pending: Set[int] = set(pending)

    def schedule(vertex: int) -> None:
        if alive[vertex] and vertex not in in_pending:
            pending.append(vertex)
            in_pending.add(vertex)

    def remove_vertex(vertex: int) -> None:
        neighbors = live_neighbors(vertex)
        alive[vertex] = False
        extra.pop(vertex, None)
        for neighbor in neighbors:
            remaining = deg[neighbor] - 1
            deg[neighbor] = remaining
            if remaining <= 2 and neighbor not in in_pending:
                pending.append(neighbor)
                in_pending.add(neighbor)

    while pending:
        vertex = pending.pop()
        in_pending.discard(vertex)
        if not alive[vertex]:
            continue
        degree = deg[vertex]
        if degree > 2:
            continue

        if degree == 0:
            forced.add(vertex)
            remove_vertex(vertex)
            stats.isolated += 1
            continue

        if degree == 1:
            (only_neighbor,) = live_neighbors(vertex)
            forced.add(vertex)
            remove_vertex(vertex)
            remove_vertex(only_neighbor)
            stats.pendant += 1
            continue

        first, second = live_neighbors(vertex)
        left, right = (first, second) if first < second else (second, first)
        if has_live_edge(left, right):
            # Triangle rule: take the degree-2 vertex.
            forced.add(vertex)
            remove_vertex(vertex)
            remove_vertex(left)
            remove_vertex(right)
            stats.triangle += 1
        else:
            # Fold rule: merge {vertex, left, right} into a fresh token.
            folded = next_token
            next_token += 1
            merged = set(live_neighbors(left)) | set(live_neighbors(right))
            merged -= {vertex, left, right}
            remove_vertex(vertex)
            remove_vertex(left)
            remove_vertex(right)
            alive[folded] = True
            folded_edges = extra.setdefault(folded, set())
            for other in merged:
                folded_edges.add(other)
                other_edges = extra.get(other)
                if other_edges is None:
                    extra[other] = {folded}
                else:
                    other_edges.add(folded)
                deg[other] += 1
            deg[folded] = len(merged)
            folds.append(_Fold(folded=folded, vertex=vertex, left=left, right=right))
            stats.folds += 1
            if deg[folded] <= 2:
                schedule(folded)

    # Materialise the kernel over compact ids.
    if _np is not None:
        tokens = _np.flatnonzero(alive[:next_token]).tolist()
    else:
        tokens = [v for v in range(next_token) if alive[v]]
    index_of = {token: index for index, token in enumerate(tokens)}
    edges = [
        (index_of[u], index_of[w])
        for u in tokens
        for w in live_neighbors(u)
        if u < w
    ]
    kernel = Graph(len(tokens), edges)
    return ReducedGraph(
        kernel=kernel,
        kernel_tokens=tuple(tokens),
        forced_tokens=frozenset(forced),
        folds=tuple(folds),
        stats=stats,
        original_vertices=graph.num_vertices,
    )


def reduced_mis(
    graph: Graph,
    kernel_solver: Optional[Callable[[Graph], Iterable[int]]] = None,
) -> MISResult:
    """Reduce, solve the kernel, and reconstruct a solution for ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    kernel_solver:
        Callable mapping the kernel graph to an iterable of kernel vertex
        ids; defaults to the two-k-swap pipeline.  Pass
        ``lambda g: exact_mis(g).independent_set`` for an exact kernel
        solve on small kernels.

    Returns
    -------
    MISResult
        The reconstructed independent set of the original graph
        (algorithm name ``"reduced_mis"``); the extras record the kernel
        size and the per-rule counters.
    """

    started = time.perf_counter()
    reduced = reduce_graph(graph)
    if kernel_solver is None:
        # Imported lazily: the solver facade routes through the pipeline
        # engine, whose reduce stage imports this module.
        from repro.core.solver import solve_mis

        def kernel_solver(kernel: Graph) -> Iterable[int]:
            return solve_mis(kernel, pipeline="two_k_swap").independent_set

    kernel_solution = (
        kernel_solver(reduced.kernel) if reduced.kernel.num_vertices else ()
    )
    solution = reduced.reconstruct(kernel_solution)
    elapsed = time.perf_counter() - started
    return MISResult(
        algorithm="reduced_mis",
        independent_set=solution,
        rounds=(),
        io=IOStats(),
        memory_bytes=0,
        elapsed_seconds=elapsed,
        initial_size=0,
        extras={
            "kernel_vertices": float(reduced.kernel_size),
            "kernel_edges": float(reduced.kernel.num_edges),
            "forced_vertices": float(len(reduced.forced_tokens)),
            "folds": float(len(reduced.folds)),
            "rule_applications": float(reduced.stats.total),
        },
    )
