"""Classic deterministic and random graph generators.

These generators back the unit tests (graphs with known independence
numbers), the property-based tests and several ablation benchmarks.  All
random generators take an explicit ``seed`` so experiments are
reproducible.

The deterministic generators and the configuration-model pairing build
their edge sets as int64 ndarrays (when numpy is available) and hand them
straight to the vectorized CSR pipeline — no per-edge Python tuples.  The
random generators that draw one variate per candidate pair keep their
original sampling loops so seeded graphs stay bit-identical to the seed
implementation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import HAVE_NUMPY, Graph

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "erdos_renyi_gnp",
    "erdos_renyi_gnm",
    "random_bipartite_graph",
    "random_regular_graph",
    "caveman_graph",
    "disjoint_union",
]


def empty_graph(num_vertices: int) -> Graph:
    """Graph with ``num_vertices`` isolated vertices and no edges.

    Its maximum independent set is the whole vertex set.
    """

    return Graph(num_vertices, [])


def path_graph(num_vertices: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``; independence number ``ceil(n / 2)``."""

    if _np is not None and num_vertices > 1:
        ids = _np.arange(num_vertices - 1, dtype=_np.int64)
        return Graph(num_vertices, _np.column_stack((ids, ids + 1)))
    return Graph(num_vertices, [(i, i + 1) for i in range(num_vertices - 1)])


def cycle_graph(num_vertices: int) -> Graph:
    """Cycle on ``n >= 3`` vertices; independence number ``floor(n / 2)``."""

    if num_vertices < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    if _np is not None:
        ids = _np.arange(num_vertices, dtype=_np.int64)
        return Graph(num_vertices, _np.column_stack((ids, (ids + 1) % num_vertices)))
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return Graph(num_vertices, edges)


def star_graph(num_leaves: int) -> Graph:
    """Star with centre 0 and ``num_leaves`` leaves; independence number ``num_leaves``."""

    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    if _np is not None and num_leaves > 0:
        leaves = _np.arange(1, num_leaves + 1, dtype=_np.int64)
        return Graph(num_leaves + 1, _np.column_stack((_np.zeros_like(leaves), leaves)))
    return Graph(num_leaves + 1, [(0, leaf) for leaf in range(1, num_leaves + 1)])


def complete_graph(num_vertices: int) -> Graph:
    """Complete graph K_n; independence number 1 (or 0 for the empty graph)."""

    if _np is not None:
        rows, cols = _np.triu_indices(num_vertices, k=1)
        return Graph(num_vertices, _np.column_stack((rows, cols)).astype(_np.int64))
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
    ]
    return Graph(num_vertices, edges)


def complete_bipartite_graph(left: int, right: int) -> Graph:
    """Complete bipartite graph K_{left,right}; independence number ``max(left, right)``."""

    if left < 0 or right < 0:
        raise GraphError("part sizes must be non-negative")
    if _np is not None and left > 0 and right > 0:
        us = _np.repeat(_np.arange(left, dtype=_np.int64), right)
        vs = _np.tile(_np.arange(left, left + right, dtype=_np.int64), left)
        return Graph(left + right, _np.column_stack((us, vs)))
    edges = [(u, left + v) for u in range(left) for v in range(right)]
    return Graph(left + right, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid; independence number ``ceil(rows * cols / 2)``."""

    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")

    if _np is not None:
        ids = _np.arange(rows * cols, dtype=_np.int64).reshape(rows, cols)
        horizontal = _np.column_stack((ids[:, :-1].reshape(-1), ids[:, 1:].reshape(-1)))
        vertical = _np.column_stack((ids[:-1, :].reshape(-1), ids[1:, :].reshape(-1)))
        return Graph(rows * cols, _np.concatenate((horizontal, vertical)))

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vertex(r, c), vertex(r, c + 1)))
            if r + 1 < rows:
                edges.append((vertex(r, c), vertex(r + 1, c)))
    return Graph(rows * cols, edges)


def erdos_renyi_gnp(num_vertices: int, probability: float, seed: Optional[int] = None) -> Graph:
    """G(n, p) random graph: every pair is an edge independently with probability ``p``."""

    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if rng.random() < probability
    ]
    return Graph(num_vertices, edges)


def erdos_renyi_gnm(num_vertices: int, num_edges: int, seed: Optional[int] = None) -> Graph:
    """G(n, m) random graph with exactly ``num_edges`` distinct edges.

    Raises :class:`GraphError` when ``num_edges`` exceeds the number of
    vertex pairs.
    """

    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} edges in a simple graph on {num_vertices} vertices"
        )
    rng = random.Random(seed)
    chosen = set()
    while len(chosen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return Graph(num_vertices, sorted(chosen))


def random_bipartite_graph(
    left: int, right: int, probability: float, seed: Optional[int] = None
) -> Graph:
    """Random bipartite graph: each cross pair is an edge with probability ``p``."""

    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    edges = [
        (u, left + v)
        for u in range(left)
        for v in range(right)
        if rng.random() < probability
    ]
    return Graph(left + right, edges)


def random_regular_graph(num_vertices: int, degree: int, seed: Optional[int] = None) -> Graph:
    """Approximately ``degree``-regular random graph via the configuration model.

    Self loops and parallel edges produced by the random matching are
    dropped, so a few vertices may end up with slightly smaller degree —
    exactly the behaviour of the paper's PLRG construction (Section 2.2).
    """

    if degree < 0:
        raise GraphError("degree must be non-negative")
    if degree >= num_vertices:
        raise GraphError("degree must be smaller than the number of vertices")
    if (num_vertices * degree) % 2 == 1:
        raise GraphError("num_vertices * degree must be even")
    rng = random.Random(seed)
    if _np is not None:
        stubs = _np.repeat(_np.arange(num_vertices, dtype=_np.int64), degree).tolist()
    else:
        stubs = []
        for v in range(num_vertices):
            stubs.extend([v] * degree)
    rng.shuffle(stubs)
    if _np is not None:
        pairs = _np.asarray(stubs, dtype=_np.int64)
        pairs = pairs[: 2 * (pairs.size // 2)].reshape(-1, 2)
        # Graph() drops the matching's self loops and parallel edges.
        return Graph(num_vertices, pairs)
    edges = []
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.append((u, v))
    return Graph(num_vertices, edges)


def caveman_graph(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: ``num_cliques`` cliques linked in a ring.

    Its independence number is exactly ``num_cliques`` for
    ``clique_size >= 2``, which makes it a convenient exact fixture.
    """

    if num_cliques < 1 or clique_size < 1:
        raise GraphError("num_cliques and clique_size must be positive")
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        # Link the first vertex of this clique to the first vertex of the next one.
        if num_cliques > 1:
            nxt = ((c + 1) % num_cliques) * clique_size
            edges.append((base, nxt))
    return Graph(num_cliques * clique_size, edges)


def disjoint_union(*graphs: Graph) -> Graph:
    """Disjoint union of graphs; vertex ids are shifted block by block."""

    total = sum(g.num_vertices for g in graphs)
    if _np is not None:
        blocks = []
        offset = 0
        for g in graphs:
            blocks.append(g.edge_array() + offset)
            offset += g.num_vertices
        if not blocks:
            return Graph(total, [])
        return Graph(total, _np.concatenate(blocks))
    edges = []
    offset = 0
    for g in graphs:
        for u, v in g.iter_edges():
            edges.append((u + offset, v + offset))
        offset += g.num_vertices
    return Graph(total, edges)
