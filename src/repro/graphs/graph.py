"""In-memory simple undirected graph backed by a CSR layout.

The semi-external algorithms in :mod:`repro.core` never require the whole
edge set in memory — they stream it from a
:class:`repro.storage.adjacency_file.AdjacencyFileReader`.  This module
provides the *in-memory* representation used by the graph generators, the
in-memory baselines, the exact solver and the tests.  It intentionally
mirrors the on-disk adjacency-list representation (per-vertex sorted
neighbour lists) so converting between the two is a straight copy.

Vertices are the integers ``0 .. n-1``.  The graph is simple: self loops
and parallel edges passed to the builder are silently dropped, matching
the paper's "simple undirected graph" setting (Section 2.1).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import GraphError, VertexError

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """An immutable simple undirected graph in compressed sparse row form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates, reversed duplicates and
        self loops are removed.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(0, 3)
    False
    """

    __slots__ = ("_offsets", "_targets", "_num_vertices", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = int(num_vertices)
        adjacency: List[set] = [set() for _ in range(self._num_vertices)]
        for u, v in edges:
            if not (0 <= u < self._num_vertices):
                raise VertexError(u, self._num_vertices)
            if not (0 <= v < self._num_vertices):
                raise VertexError(v, self._num_vertices)
            if u == v:
                continue
            adjacency[u].add(v)
            adjacency[v].add(u)
        offsets = array("q", [0] * (self._num_vertices + 1))
        targets = array("q")
        running = 0
        for v in range(self._num_vertices):
            neighbours = sorted(adjacency[v])
            targets.extend(neighbours)
            running += len(neighbours)
            offsets[v + 1] = running
        self._offsets = offsets
        self._targets = targets
        self._num_edges = running // 2

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "Graph":
        """Build a graph from per-vertex neighbour lists.

        The input is symmetrised: an edge is created whenever either
        endpoint lists the other.
        """

        n = len(adjacency)
        edges = []
        for u, neighbours in enumerate(adjacency):
            for v in neighbours:
                edges.append((u, v))
        return cls(n, edges)

    @classmethod
    def from_edge_list_text(cls, text: str) -> "Graph":
        """Parse a whitespace separated ``u v`` edge list.

        Lines starting with ``#`` or ``%`` are treated as comments.  The
        number of vertices is one more than the largest vertex id seen.
        """

        edges: List[Tuple[int, int]] = []
        max_vertex = -1
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"cannot parse edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            max_vertex = max(max_vertex, u, v)
            edges.append((u, v))
        return cls(max_vertex + 1, edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""

        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""

        return self._num_edges

    def vertices(self) -> range:
        """Return the vertex id range ``0 .. n-1``."""

        return range(self._num_vertices)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._num_vertices):
            raise VertexError(v, self._num_vertices)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Return the sorted neighbours of ``v`` as a tuple."""

        self._check_vertex(v)
        start, end = self._offsets[v], self._offsets[v + 1]
        return tuple(self._targets[start:end])

    def degree(self, v: int) -> int:
        """Return the degree of ``v``."""

        self._check_vertex(v)
        return self._offsets[v + 1] - self._offsets[v]

    def degrees(self) -> List[int]:
        """Return the list of all vertex degrees indexed by vertex id."""

        offsets = self._offsets
        return [offsets[v + 1] - offsets[v] for v in range(self._num_vertices)]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""

        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        # Binary search the smaller adjacency list.
        if self.degree(u) > self.degree(v):
            u, v = v, u
        start, end = self._offsets[u], self._offsets[u + 1]
        index = bisect_left(self._targets, v, start, end)
        return index < end and self._targets[index] == v

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every undirected edge exactly once as ``(u, v)`` with ``u < v``."""

        for u in range(self._num_vertices):
            start, end = self._offsets[u], self._offsets[u + 1]
            for index in range(start, end):
                v = self._targets[index]
                if u < v:
                    yield (u, v)

    def iter_adjacency(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(vertex, neighbours)`` in vertex-id order (one sequential pass)."""

        for v in range(self._num_vertices):
            yield v, self.neighbors(v)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def average_degree(self) -> float:
        """Average degree ``2 |E| / |V|`` (0.0 for the empty graph)."""

        if self._num_vertices == 0:
            return 0.0
        return 2.0 * self._num_edges / self._num_vertices

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""

        if self._num_vertices == 0:
            return 0
        return max(self.degrees())

    def degree_histogram(self) -> Dict[int, int]:
        """Return a ``degree -> number of vertices`` histogram."""

        return dict(Counter(self.degrees()))

    def isolated_vertices(self) -> List[int]:
        """Return all vertices with degree zero."""

        return [v for v in range(self._num_vertices) if self.degree(v) == 0]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Return the subgraph induced by ``vertices``.

        Returns the new graph together with a mapping from original vertex
        id to the new (compacted) vertex id.
        """

        selected = sorted(set(vertices))
        for v in selected:
            self._check_vertex(v)
        mapping = {old: new for new, old in enumerate(selected)}
        edges = []
        selected_set = set(selected)
        for old in selected:
            for w in self.neighbors(old):
                if w in selected_set and old < w:
                    edges.append((mapping[old], mapping[w]))
        return Graph(len(selected), edges), mapping

    def relabeled(self, order: Sequence[int]) -> "Graph":
        """Return a copy whose vertex ``i`` is the original ``order[i]``.

        ``order`` must be a permutation of the vertex ids.  This is used to
        materialise a graph whose natural scan order is, e.g., ascending
        degree order.
        """

        if sorted(order) != list(range(self._num_vertices)):
            raise GraphError("order must be a permutation of all vertex ids")
        new_id = {old: new for new, old in enumerate(order)}
        edges = [(new_id[u], new_id[v]) for u, v in self.iter_edges()]
        return Graph(self._num_vertices, edges)

    def degree_ascending_order(self) -> List[int]:
        """Return vertex ids sorted by ascending degree (ties by id).

        This is the scan order the paper's pre-processing step produces
        (Section 4.1): the adjacency file is sorted by vertex degree before
        the greedy pass.
        """

        return sorted(range(self._num_vertices), key=lambda v: (self.degree(v), v))

    def complement_edges_count(self) -> int:
        """Number of vertex pairs that are *not* edges (useful for tests)."""

        n = self._num_vertices
        return n * (n - 1) // 2 - self._num_edges

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_vertices

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self._num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and self._offsets == other._offsets
            and self._targets == other._targets
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are rarely hashed
        return hash((self._num_vertices, tuple(self._targets)))

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self._num_vertices}, num_edges={self._num_edges})"


class GraphBuilder:
    """Incremental builder that accumulates edges and produces a :class:`Graph`.

    The builder grows the vertex count automatically when
    :meth:`add_edge` refers to unseen vertex ids, which is convenient for
    generators that do not know the final vertex count up front.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge(0, 1)
    >>> builder.add_edge(1, 2)
    >>> builder.build().num_edges
    2
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = num_vertices
        self._edges: List[Tuple[int, int]] = []

    @property
    def num_vertices(self) -> int:
        """Current number of vertices the built graph will have."""

        return self._num_vertices

    @property
    def num_pending_edges(self) -> int:
        """Number of edge insertions recorded so far (before deduplication)."""

        return len(self._edges)

    def ensure_vertex(self, v: int) -> None:
        """Grow the vertex count so that ``v`` is a valid vertex id."""

        if v < 0:
            raise GraphError(f"vertex ids must be non-negative, got {v}")
        if v >= self._num_vertices:
            self._num_vertices = v + 1

    def add_vertex(self) -> int:
        """Add a fresh isolated vertex and return its id."""

        self._num_vertices += 1
        return self._num_vertices - 1

    def add_edge(self, u: int, v: int) -> None:
        """Record the undirected edge ``{u, v}`` (self loops are ignored)."""

        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if u != v:
            self._edges.append((u, v))

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Record many edges at once."""

        for u, v in edges:
            self.add_edge(u, v)

    def build(self) -> Graph:
        """Materialise the immutable :class:`Graph`."""

        return Graph(self._num_vertices, self._edges)
