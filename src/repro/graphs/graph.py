"""In-memory simple undirected graph backed by a vectorized CSR layout.

The semi-external algorithms in :mod:`repro.core` never require the whole
edge set in memory — they stream it from a
:class:`repro.storage.adjacency_file.AdjacencyFileReader`.  This module
provides the *in-memory* representation used by the graph generators, the
in-memory baselines, the exact solver and the tests.  It intentionally
mirrors the on-disk adjacency-list representation (per-vertex sorted
neighbour lists) so converting between the two is a straight copy.

The CSR arrays (``_offsets`` / ``_targets``) are ``int64`` NumPy ndarrays
built by an O(E log E) sort-and-dedup pipeline: the edge list is
symmetrised, lexicographically sorted and deduplicated with vectorized
array operations — no per-vertex Python sets are ever materialised.  When
NumPy is unavailable the same pipeline runs on plain Python lists (still
O(E log E), still set-free), so the package imports everywhere; the
vectorized kernel backend in :mod:`repro.core.kernels` then simply stays
unregistered.

Vertices are the integers ``0 .. n-1``.  The graph is simple: self loops
and parallel edges passed to the builder are silently dropped, matching
the paper's "simple undirected graph" setting (Section 2.1).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphError, VertexError

try:  # pragma: no cover - exercised implicitly on every import
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["Graph", "GraphBuilder", "HAVE_NUMPY", "build_csr", "permutation_array"]

#: Whether the vectorized NumPy construction pipeline is active.
HAVE_NUMPY = _np is not None


def _as_int64(values, what: str):
    """Coerce to an int64 ndarray, rejecting non-integral dtypes.

    ``np.asarray(..., dtype=int64)`` would silently truncate floats; the
    pure-Python paths raise on them instead, so the vectorized paths must
    too.
    """

    arr = _np.asarray(values)
    if arr.size and not (
        _np.issubdtype(arr.dtype, _np.integer) or arr.dtype == _np.bool_
    ):
        raise GraphError(f"{what} must be integers, got dtype {arr.dtype}")
    return arr.astype(_np.int64, copy=False)


def permutation_array(values, num_vertices: int):
    """Return ``values`` as an int64 ndarray if it permutes ``0..n-1``, else ``None``.

    Shared by :meth:`Graph.relabeled` and the explicit-scan-order
    validation in :mod:`repro.storage.scan` (numpy builds only).
    """

    try:
        arr = (
            _as_int64(values, "permutation entries")
            if len(values)
            else _np.empty(0, dtype=_np.int64)
        )
    except GraphError:
        return None
    if arr.shape != (num_vertices,):
        return None
    if num_vertices == 0:
        return arr
    if arr.min() < 0 or arr.max() >= num_vertices:
        return None
    if not bool((_np.bincount(arr, minlength=num_vertices) == 1).all()):
        return None
    return arr


def _first_invalid_endpoint(pairs, num_vertices: int) -> int:
    """Return the first out-of-range endpoint in edge order (u before v)."""

    flat = pairs.reshape(-1)
    bad = flat[(flat < 0) | (flat >= num_vertices)]
    return int(bad[0])


def _csr_numpy(num_vertices: int, edges) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """Vectorized O(E log E) sort-and-dedup CSR construction."""

    if _np is None:  # pragma: no cover - guarded by callers
        raise GraphError("numpy is not available")
    if isinstance(edges, _np.ndarray):
        pairs = edges
        if pairs.ndim == 1 and pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        pairs = _as_int64(pairs, "edge endpoints")
    else:
        if not isinstance(edges, (list, tuple)):
            edges = list(edges)
        if len(edges) == 0:
            pairs = _np.empty((0, 2), dtype=_np.int64)
        else:
            pairs = _as_int64(edges, "edge endpoints")
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GraphError("edges must be (u, v) pairs")

    if pairs.size:
        lo = int(pairs.min())
        hi = int(pairs.max())
        if lo < 0 or hi >= num_vertices:
            raise VertexError(_first_invalid_endpoint(pairs, num_vertices), num_vertices)
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]

    # Symmetrise, sort by (source, target), drop duplicate directed edges.
    offsets = _np.zeros(num_vertices + 1, dtype=_np.int64)
    if not pairs.size:
        return offsets, _np.empty(0, dtype=_np.int64)

    sources = pairs[:, 0]
    destinations = pairs[:, 1]
    if num_vertices <= 2**31:
        # Fuse each directed edge into one int64 key: a single-key sort is
        # substantially faster than a two-column lexsort (and than
        # np.unique, which pays for stability we do not need).
        keys = _np.sort(
            _np.concatenate(
                (
                    sources * num_vertices + destinations,
                    destinations * num_vertices + sources,
                )
            )
        )
        keep = _np.empty(keys.size, dtype=bool)
        keep[0] = True
        _np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        keys = keys[keep]
        sym_src = keys // num_vertices
        targets = keys % num_vertices
    else:  # pragma: no cover - graphs beyond 2^31 vertices
        sym = _np.concatenate([pairs, pairs[:, ::-1]])
        order = _np.lexsort((sym[:, 1], sym[:, 0]))
        sym = sym[order]
        keep = _np.empty(sym.shape[0], dtype=bool)
        keep[0] = True
        _np.logical_or(
            sym[1:, 0] != sym[:-1, 0], sym[1:, 1] != sym[:-1, 1], out=keep[1:]
        )
        sym = sym[keep]
        sym_src = sym[:, 0]
        targets = _np.ascontiguousarray(sym[:, 1])

    counts = _np.bincount(sym_src, minlength=num_vertices)
    _np.cumsum(counts, out=offsets[1:])
    return offsets, targets


def _csr_python(num_vertices: int, edges) -> Tuple[array, array]:
    """The seed's per-vertex-set construction, kept as the pure-Python reference.

    This is the pipeline the package falls back to when numpy is missing,
    and the baseline the benchmark harness compares the vectorized
    pipeline against.
    """

    adjacency: List[set] = [set() for _ in range(num_vertices)]
    for u, v in edges:
        if not (0 <= u < num_vertices):
            raise VertexError(u, num_vertices)
        if not (0 <= v < num_vertices):
            raise VertexError(v, num_vertices)
        if u == v:
            continue
        adjacency[u].add(v)
        adjacency[v].add(u)
    offsets = array("q", [0] * (num_vertices + 1))
    targets = array("q")
    running = 0
    for v in range(num_vertices):
        neighbours = sorted(adjacency[v])
        targets.extend(neighbours)
        running += len(neighbours)
        offsets[v + 1] = running
    return offsets, targets


def build_csr(num_vertices: int, edges, backend: str = "auto"):
    """Build ``(offsets, targets)`` CSR arrays from an edge iterable.

    ``backend`` selects the construction pipeline: ``"numpy"`` for the
    vectorized sort-and-dedup path, ``"python"`` for the set-free pure
    Python reference, ``"auto"`` for numpy-when-available.  The benchmark
    harness uses the explicit names to compare the two pipelines.
    """

    if backend == "auto":
        backend = "numpy" if _np is not None else "python"
    if backend == "numpy":
        return _csr_numpy(num_vertices, edges)
    if backend == "python":
        return _csr_python(num_vertices, edges)
    raise GraphError(f"unknown CSR build backend {backend!r}")


class Graph:
    """An immutable simple undirected graph in compressed sparse row form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(u, v)`` pairs — or an ``(m, 2)`` integer ndarray,
        which skips the Python-level conversion entirely.  Duplicates,
        reversed duplicates and self loops are removed.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(0, 3)
    False
    """

    __slots__ = (
        "_offsets",
        "_targets",
        "_num_vertices",
        "_num_edges",
        "_degrees",
        "_edge_sources",
    )

    def __init__(self, num_vertices: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = int(num_vertices)
        self._offsets, self._targets = build_csr(self._num_vertices, edges)
        self._num_edges = len(self._targets) // 2
        self._degrees = None
        self._edge_sources = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "Graph":
        """Build a graph from per-vertex neighbour lists.

        The input is symmetrised: an edge is created whenever either
        endpoint lists the other.
        """

        n = len(adjacency)
        edges = []
        for u, neighbours in enumerate(adjacency):
            for v in neighbours:
                edges.append((u, v))
        return cls(n, edges)

    @classmethod
    def from_edge_list_text(cls, text: str) -> "Graph":
        """Parse a whitespace separated ``u v`` edge list.

        Lines starting with ``#`` or ``%`` are treated as comments.  The
        number of vertices is one more than the largest vertex id seen.
        """

        edges: List[Tuple[int, int]] = []
        max_vertex = -1
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"cannot parse edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            max_vertex = max(max_vertex, u, v)
            edges.append((u, v))
        return cls(max_vertex + 1, edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""

        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""

        return self._num_edges

    def vertices(self) -> range:
        """Return the vertex id range ``0 .. n-1``."""

        return range(self._num_vertices)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._num_vertices):
            raise VertexError(v, self._num_vertices)

    def csr_arrays(self):
        """Return the raw ``(offsets, targets)`` CSR arrays (zero-copy).

        The arrays are int64 ndarrays when numpy is available (plain
        ``array('q')`` otherwise).  Callers — chiefly the vectorized
        kernel backend — must treat them as read-only.
        """

        return self._offsets, self._targets

    def neighbors_array(self, v: int):
        """Zero-copy slice of the sorted neighbours of ``v``."""

        self._check_vertex(v)
        return self._targets[self._offsets[v] : self._offsets[v + 1]]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Return the sorted neighbours of ``v`` as a tuple."""

        self._check_vertex(v)
        start, end = self._offsets[v], self._offsets[v + 1]
        if _np is not None:
            return tuple(self._targets[start:end].tolist())
        return tuple(self._targets[start:end])

    def degree(self, v: int) -> int:
        """Return the degree of ``v``."""

        self._check_vertex(v)
        return int(self._offsets[v + 1] - self._offsets[v])

    def degrees_array(self):
        """All vertex degrees as one (cached) vectorized diff of the offsets.

        Returns an int64 ndarray when numpy is available, a tuple
        otherwise.  Treat the result as read-only — it is shared between
        calls.
        """

        if self._degrees is None:
            if _np is not None:
                self._degrees = _np.diff(self._offsets)
            else:
                offsets = self._offsets
                self._degrees = tuple(
                    offsets[v + 1] - offsets[v] for v in range(self._num_vertices)
                )
        return self._degrees

    def degrees(self) -> List[int]:
        """Return a fresh list of all vertex degrees indexed by vertex id."""

        cached = self.degrees_array()
        if _np is not None:
            return cached.tolist()
        return list(cached)

    def edge_sources_array(self):
        """Source vertex of every directed CSR slot (cached, numpy only).

        ``edge_sources_array()[i]`` is the vertex whose adjacency list
        holds ``targets[i]``; together with ``csr_arrays()`` this turns
        per-edge sweeps into single ``np.bincount`` calls.
        """

        if _np is None:
            raise GraphError("edge_sources_array requires numpy")
        if self._edge_sources is None:
            self._edge_sources = _np.repeat(
                _np.arange(self._num_vertices, dtype=_np.int64), self.degrees_array()
            )
        return self._edge_sources

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""

        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        # Binary search the smaller adjacency list (zero-copy: the search
        # runs directly on the CSR targets array).
        if self.degree(u) > self.degree(v):
            u, v = v, u
        start, end = int(self._offsets[u]), int(self._offsets[u + 1])
        index = bisect_left(self._targets, v, start, end)
        return index < end and self._targets[index] == v

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every undirected edge exactly once as ``(u, v)`` with ``u < v``."""

        if _np is not None:
            sources = self.edge_sources_array()
            mask = sources < self._targets
            yield from zip(sources[mask].tolist(), self._targets[mask].tolist())
            return
        for u in range(self._num_vertices):
            start, end = self._offsets[u], self._offsets[u + 1]
            for index in range(start, end):
                v = self._targets[index]
                if u < v:
                    yield (u, v)

    def edge_array(self):
        """All undirected edges as an ``(m, 2)`` int64 ndarray with u < v."""

        if _np is None:
            raise GraphError("edge_array requires numpy")
        sources = self.edge_sources_array()
        mask = sources < self._targets
        return _np.column_stack((sources[mask], self._targets[mask]))

    def iter_adjacency(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(vertex, neighbours)`` in vertex-id order (one sequential pass).

        The pass converts the CSR targets to a Python list once and
        slices it per vertex, instead of paying a bounds-checked
        ndarray-to-tuple conversion for every record.
        """

        if _np is not None:
            targets = self._targets.tolist()
            offsets = self._offsets.tolist()
        else:
            targets = list(self._targets)
            offsets = list(self._offsets)
        for v in range(self._num_vertices):
            yield v, tuple(targets[offsets[v] : offsets[v + 1]])

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def average_degree(self) -> float:
        """Average degree ``2 |E| / |V|`` (0.0 for the empty graph)."""

        if self._num_vertices == 0:
            return 0.0
        return 2.0 * self._num_edges / self._num_vertices

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""

        if self._num_vertices == 0:
            return 0
        degrees = self.degrees_array()
        if _np is not None:
            return int(degrees.max())
        return max(degrees)

    def degree_histogram(self) -> Dict[int, int]:
        """Return a ``degree -> number of vertices`` histogram."""

        if self._num_vertices == 0:
            return {}
        degrees = self.degrees_array()
        if _np is not None:
            counts = _np.bincount(degrees)
            return {
                int(degree): int(count)
                for degree, count in enumerate(counts.tolist())
                if count
            }
        return dict(Counter(degrees))

    def isolated_vertices(self) -> List[int]:
        """Return all vertices with degree zero."""

        if _np is not None:
            return _np.flatnonzero(self.degrees_array() == 0).tolist()
        return [v for v in range(self._num_vertices) if self.degree(v) == 0]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Return the subgraph induced by ``vertices``.

        Returns the new graph together with a mapping from original vertex
        id to the new (compacted) vertex id.
        """

        selected = sorted(set(vertices))
        for v in selected[:1] + selected[-1:]:
            self._check_vertex(v)
        mapping = {old: new for new, old in enumerate(selected)}
        if _np is not None:
            new_id = _np.full(self._num_vertices, -1, dtype=_np.int64)
            if selected:
                new_id[_np.asarray(selected, dtype=_np.int64)] = _np.arange(
                    len(selected), dtype=_np.int64
                )
            sources = self.edge_sources_array()
            keep = (new_id[sources] >= 0) & (new_id[self._targets] >= 0)
            edges = _np.column_stack((new_id[sources[keep]], new_id[self._targets[keep]]))
            return Graph(len(selected), edges), mapping
        edges = []
        selected_set = set(selected)
        for old in selected:
            for w in self.neighbors(old):
                if w in selected_set and old < w:
                    edges.append((mapping[old], mapping[w]))
        return Graph(len(selected), edges), mapping

    def relabeled(self, order: Sequence[int]) -> "Graph":
        """Return a copy whose vertex ``i`` is the original ``order[i]``.

        ``order`` must be a permutation of the vertex ids.  This is used to
        materialise a graph whose natural scan order is, e.g., ascending
        degree order.
        """

        if _np is not None:
            order_arr = permutation_array(list(order), self._num_vertices)
            if order_arr is None:
                raise GraphError("order must be a permutation of all vertex ids")
            new_id = _np.empty(self._num_vertices, dtype=_np.int64)
            new_id[order_arr] = _np.arange(self._num_vertices, dtype=_np.int64)
            sources = self.edge_sources_array()
            edges = _np.column_stack((new_id[sources], new_id[self._targets]))
            return Graph(self._num_vertices, edges)
        if sorted(order) != list(range(self._num_vertices)):
            raise GraphError("order must be a permutation of all vertex ids")
        new_id = {old: new for new, old in enumerate(order)}
        edges = [(new_id[u], new_id[v]) for u, v in self.iter_edges()]
        return Graph(self._num_vertices, edges)

    def degree_ascending_order_array(self):
        """Vertex ids sorted by ascending degree as an ndarray (numpy only)."""

        if _np is None:
            raise GraphError("degree_ascending_order_array requires numpy")
        # A stable argsort breaks degree ties by vertex id, exactly like
        # sorting on the (degree, id) key.
        return _np.argsort(self.degrees_array(), kind="stable")

    def degree_ascending_order(self) -> List[int]:
        """Return vertex ids sorted by ascending degree (ties by id).

        This is the scan order the paper's pre-processing step produces
        (Section 4.1): the adjacency file is sorted by vertex degree before
        the greedy pass.
        """

        if _np is not None:
            return self.degree_ascending_order_array().tolist()
        return sorted(range(self._num_vertices), key=lambda v: (self.degree(v), v))

    def complement_edges_count(self) -> int:
        """Number of vertex pairs that are *not* edges (useful for tests)."""

        n = self._num_vertices
        return n * (n - 1) // 2 - self._num_edges

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_vertices

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self._num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._num_vertices != other._num_vertices:
            return False
        if _np is not None:
            return _np.array_equal(self._offsets, other._offsets) and _np.array_equal(
                self._targets, other._targets
            )
        return self._offsets == other._offsets and self._targets == other._targets

    def __hash__(self) -> int:  # pragma: no cover - graphs are rarely hashed
        return hash((self._num_vertices, tuple(map(int, self._targets))))

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self._num_vertices}, num_edges={self._num_edges})"


class GraphBuilder:
    """Incremental builder that accumulates edges and produces a :class:`Graph`.

    The builder grows the vertex count automatically when
    :meth:`add_edge` refers to unseen vertex ids, which is convenient for
    generators that do not know the final vertex count up front.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge(0, 1)
    >>> builder.add_edge(1, 2)
    >>> builder.build().num_edges
    2
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = num_vertices
        self._edges: List[Tuple[int, int]] = []

    @property
    def num_vertices(self) -> int:
        """Current number of vertices the built graph will have."""

        return self._num_vertices

    @property
    def num_pending_edges(self) -> int:
        """Number of edge insertions recorded so far (before deduplication)."""

        return len(self._edges)

    def ensure_vertex(self, v: int) -> None:
        """Grow the vertex count so that ``v`` is a valid vertex id."""

        if v < 0:
            raise GraphError(f"vertex ids must be non-negative, got {v}")
        if v >= self._num_vertices:
            self._num_vertices = v + 1

    def add_vertex(self) -> int:
        """Add a fresh isolated vertex and return its id."""

        self._num_vertices += 1
        return self._num_vertices - 1

    def add_edge(self, u: int, v: int) -> None:
        """Record the undirected edge ``{u, v}`` (self loops are ignored)."""

        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if u != v:
            self._edges.append((u, v))

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Record many edges at once."""

        for u, v in edges:
            self.add_edge(u, v)

    def build(self) -> Graph:
        """Materialise the immutable :class:`Graph`."""

        return Graph(self._num_vertices, self._edges)
