"""The cascading-swap worst case of Figure 5.

Section 5.4 shows that, in the worst case, the one-k-swap algorithm needs a
number of swap rounds linear in the number of vertices: a *cascade-swap
graph* is built from a chain of triples ``(a_i, b_i, c_i)`` such that in
round ``r`` only the swap ``a_{k-r} -> {b_{k-r}, c_{k-r}}`` is possible.

The construction used here:

* each triple has the edges ``a_i - b_i`` and ``a_i - c_i``;
* for every triple except the last, ``b_i`` and ``c_i`` are also adjacent
  to ``a_{i+1}``.

When the greedy independent set is ``{a_0, ..., a_{k-1}}`` (which the
helper :func:`cascade_initial_independent_set` returns), only ``b_{k-1}``
and ``c_{k-1}`` have exactly one IS neighbour, so only the last triple can
swap in round one; the swap then frees the previous triple, and so on —
``k`` rounds in total.  This is the ablation fixture used by
``benchmarks/bench_ablation_cascade.py`` and the round-count tests.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import HAVE_NUMPY, Graph

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "cascade_swap_graph",
    "cascade_initial_independent_set",
    "cascade_optimal_size",
]


def _triple_ids(index: int) -> Tuple[int, int, int]:
    """Vertex ids ``(a, b, c)`` of the ``index``-th triple."""

    base = 3 * index
    return base, base + 1, base + 2


def cascade_swap_graph(num_triples: int) -> Graph:
    """Build a cascade-swap graph with ``num_triples`` chained triples."""

    if num_triples < 1:
        raise GraphError("a cascade-swap graph needs at least one triple")
    if _np is not None:
        a = 3 * _np.arange(num_triples, dtype=_np.int64)
        within = _np.concatenate(
            (_np.column_stack((a, a + 1)), _np.column_stack((a, a + 2)))
        )
        chain_a = a[:-1]
        next_a = a[1:]
        links = _np.concatenate(
            (
                _np.column_stack((chain_a + 1, next_a)),
                _np.column_stack((chain_a + 2, next_a)),
            )
        )
        return Graph(3 * num_triples, _np.concatenate((within, links)))
    edges: List[Tuple[int, int]] = []
    for index in range(num_triples):
        a, b, c = _triple_ids(index)
        edges.append((a, b))
        edges.append((a, c))
        if index + 1 < num_triples:
            next_a, _, _ = _triple_ids(index + 1)
            edges.append((b, next_a))
            edges.append((c, next_a))
    return Graph(3 * num_triples, edges)


def cascade_initial_independent_set(num_triples: int) -> Set[int]:
    """The adversarial starting independent set ``{a_0, ..., a_{k-1}}``."""

    if num_triples < 1:
        raise GraphError("a cascade-swap graph needs at least one triple")
    return {_triple_ids(index)[0] for index in range(num_triples)}


def cascade_optimal_size(num_triples: int) -> int:
    """Independence number of :func:`cascade_swap_graph`.

    Taking every ``b_i`` and ``c_i`` is independent (the only edges among
    them go to ``a`` vertices), so the independence number is
    ``2 * num_triples``.
    """

    if num_triples < 1:
        raise GraphError("a cascade-swap graph needs at least one triple")
    return 2 * num_triples
