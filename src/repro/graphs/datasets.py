"""Synthetic stand-ins for the ten real-world datasets of Table 4.

The paper evaluates on real graphs (Astroph, DBLP, Youtube, Patent, Blog,
Citeseerx, Uniport, Facebook, Twitter, ClueWeb12) that range from 37
thousand to 978 million vertices and up to 42 *billion* edges.  Those
graphs are not redistributable here and are far beyond what pure Python
can traverse in the time budget, so the benchmark harness substitutes
**scaled synthetic graphs** with the same qualitative characteristics:

* the vertex count is the real vertex count multiplied by a configurable
  ``scale`` (clamped to a minimum so tiny datasets stay meaningful);
* the average degree matches the real dataset's average degree;
* the degree distribution is heavy-tailed, generated with a power-law
  degree sequence (skew parameter per dataset) realised through the
  configuration model — the same family of graphs the paper's analysis
  targets.

This is the substitution documented in DESIGN.md §6: the algorithms only
interact with the degree distribution and the adjacency structure, so the
qualitative results (ordering of the algorithms, number of swap rounds,
memory per vertex) carry over.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DatasetError
from repro.graphs.graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "available_datasets", "load_dataset", "dataset_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one real dataset from Table 4 and its stand-in parameters.

    Attributes
    ----------
    name:
        Dataset name as used in the paper's tables.
    real_vertices / real_edges:
        The |V| and |E| reported in Table 4 (for reference and reporting).
    avg_degree:
        Average degree reported in Table 4; the stand-in matches it.
    beta:
        Power-law skew used for the synthetic degree sequence (larger is
        less skewed).
    disk_size:
        Human readable on-disk size from Table 4, carried through for
        reporting only.
    """

    name: str
    real_vertices: int
    real_edges: int
    avg_degree: float
    beta: float
    disk_size: str

    def scaled_vertices(self, scale: float, min_vertices: int = 300) -> int:
        """Vertex count of the stand-in for a given ``scale`` factor."""

        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return max(min_vertices, int(round(self.real_vertices * scale)))


#: The ten datasets of Table 4.  ``beta`` values are chosen so that social /
#: web graphs (Twitter, ClueWeb12, Blog) are more skewed than citation and
#: collaboration networks.
DATASETS: Dict[str, DatasetSpec] = {
    "astroph": DatasetSpec("Astroph", 37_000, 396_000, 21.1, 2.6, "3.3MB"),
    "dblp": DatasetSpec("DBLP", 425_000, 1_050_000, 4.92, 2.6, "11.2MB"),
    "youtube": DatasetSpec("Youtube", 1_160_000, 2_990_000, 5.16, 2.2, "31.6MB"),
    "patent": DatasetSpec("Patent", 3_770_000, 16_520_000, 8.76, 2.4, "154MB"),
    "blog": DatasetSpec("Blog", 4_040_000, 34_680_000, 17.18, 2.1, "295MB"),
    "citeseerx": DatasetSpec("Citeseerx", 6_540_000, 15_010_000, 4.6, 2.3, "164MB"),
    "uniport": DatasetSpec("Uniport", 6_970_000, 15_980_000, 4.59, 2.5, "175MB"),
    "facebook": DatasetSpec("Facebook", 59_220_000, 151_740_000, 5.12, 2.2, "1.57GB"),
    "twitter": DatasetSpec("Twitter", 61_580_000, 2_405_000_000, 78.12, 1.9, "9.41GB"),
    "clueweb12": DatasetSpec("Clueweb12", 978_400_000, 42_570_000_000, 87.03, 1.8, "169GB"),
}


def available_datasets() -> Tuple[str, ...]:
    """Names of all dataset stand-ins, in the order Table 4 lists them."""

    return tuple(DATASETS.keys())


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for ``name`` (case-insensitive)."""

    key = name.lower()
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return DATASETS[key]


def _power_law_degree_sequence(
    num_vertices: int,
    beta: float,
    avg_degree: float,
    rng: random.Random,
) -> List[int]:
    """Sample a degree sequence with power-law tail and the requested mean.

    Degrees are drawn from ``P(deg = k) ~ k^-beta`` for
    ``k = 1 .. max_degree`` and then rescaled multiplicatively so the mean
    matches ``avg_degree`` (degrees never drop below one, and never exceed
    ``num_vertices - 1``).
    """

    max_degree = max(2, min(num_vertices - 1, int(round(math.sqrt(num_vertices) * 4))))
    weights = [k**-beta for k in range(1, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for w in weights:
        running += w
        cumulative.append(running / total)

    def sample_degree() -> int:
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    raw = [sample_degree() for _ in range(num_vertices)]
    raw_mean = sum(raw) / len(raw)
    factor = avg_degree / raw_mean if raw_mean > 0 else 1.0
    return [max(1, min(num_vertices - 1, int(round(d * factor)))) for d in raw]


def _configuration_model(degrees: List[int], rng: random.Random) -> Graph:
    """Realise a degree sequence with the configuration model (simple graph)."""

    stubs: List[int] = []
    for vertex, degree in enumerate(degrees):
        stubs.extend([vertex] * degree)
    if len(stubs) % 2 == 1:
        stubs.pop()
    rng.shuffle(stubs)
    edges = []
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.append((u, v))
    return Graph(len(degrees), edges)


def load_dataset(
    name: str,
    scale: float = 0.001,
    seed: Optional[int] = 0,
    min_vertices: int = 300,
) -> Graph:
    """Build the scaled synthetic stand-in for a Table 4 dataset.

    Parameters
    ----------
    name:
        Dataset name (case-insensitive), e.g. ``"facebook"``.
    scale:
        Fraction of the real vertex count to generate.  The default of
        ``0.001`` keeps even the ClueWeb12 stand-in below a million
        vertices; benchmarks typically use much smaller scales.
    seed:
        Seed of the degree-sequence sampling and the random matching.
    min_vertices:
        Lower clamp on the stand-in size so small scales remain useful.

    Returns
    -------
    Graph
        A simple undirected graph whose average degree approximates the
        real dataset's average degree.
    """

    spec = dataset_spec(name)
    rng = random.Random(seed)
    num_vertices = spec.scaled_vertices(scale, min_vertices=min_vertices)
    degrees = _power_law_degree_sequence(num_vertices, spec.beta, spec.avg_degree, rng)
    return _configuration_model(degrees, rng)
