"""Graph containers, random graph models and dataset stand-ins.

The sub-package provides:

* :class:`repro.graphs.graph.Graph` — an immutable, CSR-backed simple
  undirected graph used throughout the library.
* :class:`repro.graphs.graph.GraphBuilder` — incremental construction.
* :mod:`repro.graphs.plrg` — the Aiello–Chung–Lu power-law random graph
  model :math:`P(\\alpha, \\beta)` used by the paper's analysis.
* :mod:`repro.graphs.generators` — classic deterministic and random
  generators (paths, cycles, stars, complete graphs, Erdős–Rényi, …).
* :mod:`repro.graphs.cascade` — the cascading-swap worst case of Figure 5.
* :mod:`repro.graphs.datasets` — scaled synthetic stand-ins for the ten
  real-world datasets of Table 4.
"""

from repro.graphs.graph import Graph, GraphBuilder
from repro.graphs.plrg import PLRGParameters, plrg_degree_sequence, plrg_graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    path_graph,
    random_bipartite_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.cascade import cascade_swap_graph
from repro.graphs.datasets import DatasetSpec, available_datasets, load_dataset

__all__ = [
    "Graph",
    "GraphBuilder",
    "PLRGParameters",
    "plrg_degree_sequence",
    "plrg_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "path_graph",
    "random_bipartite_graph",
    "random_regular_graph",
    "star_graph",
    "cascade_swap_graph",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
]
