"""The Aiello–Chung–Lu power-law random graph model :math:`P(\\alpha, \\beta)`.

Section 2.2 of the paper defines the model by its degree distribution:
the number of vertices with degree ``x`` is ``y`` where
``log y = alpha - beta * log x``, i.e. ``y = e^alpha / x^beta`` — and the
random graph is realised with the *configuration model*:

1. form a multiset ``L`` containing ``deg(v)`` copies of each vertex ``v``;
2. choose a random perfect matching of ``L``;
3. connect ``u`` and ``v`` once for every matched pair of their copies.

Self loops and parallel edges created by the matching are discarded so the
result is a simple graph (the expected number of such collisions is a
vanishing fraction of the edges for ``beta > 1``).

The module also provides the closed-form vertex/edge counts of
Equation (2) and a helper that solves for ``alpha`` given a target vertex
count, which the experiments use ("fix the number of vertices to 10
million and vary beta").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AnalysisError, GraphError
from repro.graphs.graph import HAVE_NUMPY, Graph

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "PLRGParameters",
    "zeta_partial",
    "plrg_max_degree",
    "plrg_expected_vertices",
    "plrg_expected_edges",
    "alpha_for_vertex_count",
    "plrg_degree_sequence",
    "plrg_graph",
    "plrg_graph_with_vertex_count",
]


def zeta_partial(exponent: float, terms: int) -> float:
    """Partial zeta sum ``zeta(x, y) = sum_{i=1..y} 1 / i^x`` used by Equation (2)."""

    if terms < 0:
        raise AnalysisError(f"the number of terms must be non-negative, got {terms}")
    return sum(1.0 / i**exponent for i in range(1, terms + 1))


def plrg_max_degree(alpha: float, beta: float) -> int:
    """Maximum degree ``Delta = floor(e^(alpha / beta))`` of :math:`P(\\alpha, \\beta)`."""

    if beta <= 0:
        raise AnalysisError(f"beta must be positive, got {beta}")
    return int(math.floor(math.exp(alpha / beta)))


def plrg_expected_vertices(alpha: float, beta: float) -> float:
    """Expected vertex count ``|V| = zeta(beta, Delta) * e^alpha`` (Equation 2)."""

    delta = plrg_max_degree(alpha, beta)
    return zeta_partial(beta, delta) * math.exp(alpha)


def plrg_expected_edges(alpha: float, beta: float) -> float:
    """Expected edge count ``|E| = 1/2 * zeta(beta - 1, Delta) * e^alpha`` (Equation 2).

    Equation (2) of the paper counts edge *endpoints* (the sum of degrees);
    we report undirected edges, hence the factor one half.
    """

    delta = plrg_max_degree(alpha, beta)
    return 0.5 * zeta_partial(beta - 1.0, delta) * math.exp(alpha)


def alpha_for_vertex_count(num_vertices: int, beta: float) -> float:
    """Solve ``plrg_expected_vertices(alpha, beta) == num_vertices`` for ``alpha``.

    A simple bisection; the expected vertex count is monotonically
    increasing in ``alpha``.
    """

    if num_vertices < 1:
        raise AnalysisError("num_vertices must be positive")
    low, high = 0.0, 1.0
    while plrg_expected_vertices(high, beta) < num_vertices:
        high *= 2.0
        if high > 1e6:  # pragma: no cover - defensive only
            raise AnalysisError("failed to bracket alpha for the requested vertex count")
    for _ in range(200):
        mid = (low + high) / 2.0
        if plrg_expected_vertices(mid, beta) < num_vertices:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass(frozen=True)
class PLRGParameters:
    """Convenience bundle of the :math:`P(\\alpha, \\beta)` model parameters.

    Attributes
    ----------
    alpha:
        Logarithm of the graph size (the intercept of the log-log degree
        distribution).
    beta:
        Log-log decay rate of the degree distribution.
    """

    alpha: float
    beta: float

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the model."""

        return plrg_max_degree(self.alpha, self.beta)

    @property
    def expected_vertices(self) -> float:
        """Expected number of vertices of the model."""

        return plrg_expected_vertices(self.alpha, self.beta)

    @property
    def expected_edges(self) -> float:
        """Expected number of undirected edges of the model."""

        return plrg_expected_edges(self.alpha, self.beta)

    def vertices_with_degree(self, degree: int) -> int:
        """Number of vertices with the given degree, ``floor(e^alpha / degree^beta)``."""

        if degree < 1:
            raise AnalysisError("degrees in the PLRG model start at 1")
        return int(math.floor(math.exp(self.alpha) / degree**self.beta))

    @classmethod
    def from_vertex_count(cls, num_vertices: int, beta: float) -> "PLRGParameters":
        """Build parameters whose expected vertex count is ``num_vertices``."""

        return cls(alpha=alpha_for_vertex_count(num_vertices, beta), beta=beta)


def plrg_degree_sequence(params: PLRGParameters) -> List[int]:
    """Materialise the deterministic degree sequence of :math:`P(\\alpha, \\beta)`.

    Degree ``x`` contributes ``floor(e^alpha / x^beta)`` vertices, for
    ``x = 1 .. Delta``.  The sequence lists the degree of every vertex and
    is returned in ascending order.
    """

    if _np is not None:
        return _degree_sequence_array(params).tolist()
    sequence: List[int] = []
    for degree in range(1, params.max_degree + 1):
        sequence.extend([degree] * params.vertices_with_degree(degree))
    return sequence


def _degree_sequence_array(params: PLRGParameters):
    """The degree sequence as an int64 ndarray (``np.repeat`` over the counts).

    The per-degree counts come from :meth:`PLRGParameters.vertices_with_degree`
    — a scalar loop over the (small) maximum degree — so the numpy and
    pure-Python paths share one formula and stay bit-identical; only the
    O(|V|) materialisation is vectorized.
    """

    max_degree = params.max_degree
    counts = [params.vertices_with_degree(degree) for degree in range(1, max_degree + 1)]
    return _np.repeat(_np.arange(1, max_degree + 1, dtype=_np.int64), counts)


def plrg_graph(
    params: PLRGParameters,
    seed: Optional[int] = None,
    sort_by_degree: bool = True,
) -> Graph:
    """Sample a simple graph from :math:`P(\\alpha, \\beta)` via the configuration model.

    Parameters
    ----------
    params:
        Model parameters.
    seed:
        Seed of the pseudo-random matching.
    sort_by_degree:
        When true (the default) vertex ids are assigned so that vertex 0 has
        the smallest degree — i.e. the natural scan order of the resulting
        graph is already the ascending-degree order the paper's
        pre-processing produces.  Set to ``False`` to obtain a random id
        assignment (useful for exercising the external sort).
    """

    degrees = plrg_degree_sequence(params)
    if not degrees:
        raise GraphError("the PLRG parameters produce an empty degree sequence")
    rng = random.Random(seed)
    num_vertices = len(degrees)

    vertex_degrees = list(degrees)
    if not sort_by_degree:
        rng.shuffle(vertex_degrees)

    if _np is not None:
        stubs = _np.repeat(
            _np.arange(num_vertices, dtype=_np.int64),
            _np.asarray(vertex_degrees, dtype=_np.int64),
        ).tolist()
    else:
        stubs = []
        for vertex, degree in enumerate(vertex_degrees):
            stubs.extend([vertex] * degree)
    if len(stubs) % 2 == 1:
        # Drop one stub of the highest-degree vertex so the matching is perfect.
        stubs.pop()
    rng.shuffle(stubs)

    if _np is not None:
        pairs = _np.asarray(stubs, dtype=_np.int64).reshape(-1, 2)
        # Graph() drops the matching's self loops and parallel edges.
        return Graph(num_vertices, pairs)
    edges = []
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.append((u, v))
    return Graph(num_vertices, edges)


def plrg_graph_with_vertex_count(
    num_vertices: int,
    beta: float,
    seed: Optional[int] = None,
    sort_by_degree: bool = True,
) -> Graph:
    """Sample a PLRG graph whose expected vertex count is ``num_vertices``."""

    params = PLRGParameters.from_vertex_count(num_vertices, beta)
    return plrg_graph(params, seed=seed, sort_by_degree=sort_by_degree)
