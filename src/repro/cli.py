"""Command-line interface: ``repro-mis`` (or ``python -m repro``).

Sub-commands
------------
``generate``
    Generate a synthetic graph (PLRG, Erdős–Rényi, or a dataset stand-in)
    and write it as a binary adjacency file.
``solve``
    Run one of the pipelines on an adjacency file (or generate a graph on
    the fly) and print the result summary.
``compare``
    Run the semi-external pipelines next to the in-memory comparators
    (local search, DynamicUpdate) on one file — a Table 5/6-style
    side-by-side of sizes, times and modeled memory, with an optional
    memory limit that reproduces the paper's "N/A" entries.
``bound``
    Compute the Algorithm-5 upper bound on the independence number.
``theory``
    Evaluate the PLRG performance model for given (|V|, beta).
``datasets``
    List the Table 4 dataset stand-ins.
``import`` / ``export``
    Convert between SNAP-style text edge lists and the binary adjacency
    format.
``reduce``
    Apply the exact kernelization rules to an adjacency file and report
    the kernel size; with ``--pipeline`` the kernel is solved through the
    engine (``reduce → …``) and the lifted solution is reported too.
``run``
    Execute a declarative run spec (``--config run.json``): pipeline
    composition, input, backend, checkpointing — the scenario runner.

Every command that executes solver passes resolves its kernel backend
through one shared helper (``--backend`` flag → ``REPRO_KERNEL_BACKEND``
→ auto-detection) and runs on the stage-based pipeline engine; ``solve``
and ``run`` support ``--checkpoint``/``--resume`` for restartable runs
(an interrupted run exits with status 3 and resumes bit-identically).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.analysis.plrg_theory import PLRGTheory
from repro.analysis.upper_bound import independence_upper_bound
from repro.core.result import MISResult
from repro.core.solver import PIPELINES
from repro.errors import (
    CheckpointError,
    MemoryBudgetError,
    PipelineInterrupted,
    PipelineSpecError,
    StorageError,
)
from repro.pipeline.context import ExecutionContext, add_execution_arguments
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.spec import PipelineSpec, RunSpec, StageSpec
from repro.graphs.datasets import DATASETS, load_dataset
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.graph import Graph
from repro.graphs.plrg import PLRGParameters, plrg_graph
from repro.reporting import format_table
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.converters import export_edge_list, import_edge_list

__all__ = ["main", "build_parser"]

#: Exit status of a run interrupted by ``--interrupt-after`` (the
#: checkpoint on disk is complete; re-run with ``--resume``).
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mis`` entry point."""

    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Semi-external maximum independent set toolkit (VLDB 2015 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic graph file")
    generate.add_argument("output", help="path of the binary adjacency file to write")
    generate.add_argument("--model", choices=["plrg", "gnm", "dataset"], default="plrg")
    generate.add_argument("--vertices", type=int, default=10_000)
    generate.add_argument("--edges", type=int, default=30_000, help="gnm only")
    generate.add_argument("--beta", type=float, default=2.1, help="plrg only")
    generate.add_argument("--dataset", default="dblp", help="dataset stand-in name")
    generate.add_argument("--scale", type=float, default=0.001, help="dataset scale factor")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--order",
        choices=["degree", "id"],
        default="degree",
        help="record order of the output file",
    )

    solve = subparsers.add_parser("solve", help="run a pipeline on an adjacency file")
    solve.add_argument("input", help="path of a binary adjacency file")
    solve.add_argument("--pipeline", choices=sorted(PIPELINES), default="two_k_swap")
    solve.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(solve)
    solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a versioned checkpoint file after every stage and every "
        "swap round, making the run restartable",
    )
    solve.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from --checkpoint instead of starting over "
        "(bit-identical final result and I/O accounting)",
    )
    solve.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="testing/drill knob: exit with status 3 right after the N-th "
        "checkpoint write",
    )
    solve.add_argument("--json", action="store_true", help="emit the summary as JSON")

    compare = subparsers.add_parser(
        "compare",
        help="run pipelines and in-memory comparators side by side (Tables 5/6)",
    )
    compare.add_argument("input", help="path of a binary adjacency file")
    compare.add_argument(
        "--algorithms",
        default="greedy,one_k_swap,two_k_swap,local_search,dynamic_update",
        help="comma-separated subset of: "
        + ",".join(sorted(set(PIPELINES) | set(COMPARATORS))),
    )
    compare.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(compare, include_memory_limit=True)
    compare.add_argument("--json", action="store_true", help="emit rows as JSON")

    run = subparsers.add_parser(
        "run", help="execute a declarative run spec (scenario runner)"
    )
    run.add_argument(
        "--config",
        required=True,
        metavar="PATH",
        help="JSON run spec: {'pipeline': name-or-inline-spec, 'input': file, "
        "and optional 'backend', 'max_rounds', 'memory_limit_bytes', "
        "'checkpoint', 'resume'}",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the spec's checkpoint (overrides 'resume': false)",
    )
    run.add_argument("--json", action="store_true", help="emit the summary as JSON")

    bound = subparsers.add_parser("bound", help="Algorithm 5 upper bound for a file")
    bound.add_argument("input", help="path of a binary adjacency file")

    theory = subparsers.add_parser("theory", help="evaluate the PLRG performance model")
    theory.add_argument("--vertices", type=int, default=10_000_000)
    theory.add_argument("--beta", type=float, default=2.1)

    subparsers.add_parser("datasets", help="list the Table 4 dataset stand-ins")

    import_cmd = subparsers.add_parser(
        "import", help="convert a text edge list into a binary adjacency file"
    )
    import_cmd.add_argument("text_input", help="path of the text edge list")
    import_cmd.add_argument("output", help="path of the binary adjacency file to write")
    import_cmd.add_argument("--order", choices=["degree", "id"], default="degree")
    import_cmd.add_argument(
        "--compact", action="store_true",
        help="renumber sparse vertex ids to 0..n-1 while importing",
    )

    export_cmd = subparsers.add_parser(
        "export", help="convert a binary adjacency file into a text edge list"
    )
    export_cmd.add_argument("input", help="path of the binary adjacency file")
    export_cmd.add_argument("text_output", help="path of the text edge list to write")

    reduce_cmd = subparsers.add_parser(
        "reduce", help="apply the exact kernelization rules to an adjacency file"
    )
    reduce_cmd.add_argument("input", help="path of the binary adjacency file")
    reduce_cmd.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default=None,
        help="additionally solve the kernel with this pipeline (the engine "
        "runs reduce followed by the pipeline's stages and lifts the "
        "solution back to the original graph)",
    )
    reduce_cmd.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(reduce_cmd)
    return parser


def _generate_graph(args: argparse.Namespace) -> Graph:
    """Build the requested in-memory graph for the ``generate`` command."""

    if args.model == "plrg":
        params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
        return plrg_graph(params, seed=args.seed)
    if args.model == "gnm":
        return erdos_renyi_gnm(args.vertices, args.edges, seed=args.seed)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _command_generate(args: argparse.Namespace) -> int:
    graph = _generate_graph(args)
    order = graph.degree_ascending_order() if args.order == "degree" else range(graph.num_vertices)
    device = write_adjacency_file(graph, args.output, order=list(order))
    device.close()
    print(
        f"wrote {args.output}: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _print_result(result: MISResult, as_json: bool) -> None:
    """Shared ``solve``/``run`` output: the summary plus per-stage telemetry."""

    summary = result.summary()
    stages = result.extras.get("stages", [])
    if as_json:
        summary["stages"] = stages
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["metric", "value"], rows))
    if stages:
        print(
            format_table(
                ["stage", "algorithm", "size", "rounds", "seconds", "scans"],
                [
                    [
                        entry["stage"],
                        entry["algorithm"],
                        entry["size"],
                        entry["rounds"],
                        entry["elapsed_seconds"],
                        entry["io"]["sequential_scans"],
                    ]
                    for entry in stages
                ],
            )
        )


def _run_engine_command(
    spec: PipelineSpec,
    reader: AdjacencyFileReader,
    args: argparse.Namespace,
    max_rounds: Optional[int],
    checkpoint: Optional[str],
    resume: bool,
    interrupt_after: Optional[int] = None,
    memory_limit_bytes: Optional[int] = None,
) -> int:
    """Build the context, run the engine, print the result (solve/run)."""

    ctx = ExecutionContext.from_args(args, reader)
    if memory_limit_bytes is not None:
        ctx.memory_limit_bytes = memory_limit_bytes
    try:
        engine = PipelineEngine(
            spec,
            max_rounds=max_rounds,
            checkpoint_path=checkpoint,
            resume=resume,
            interrupt_after=interrupt_after,
        )
        result = engine.run(ctx)
    except PipelineInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_INTERRUPTED
    except (PipelineSpecError, CheckpointError, MemoryBudgetError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_result(result, args.json)
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.interrupt_after is not None and args.checkpoint is None:
        # Without a checkpoint no write ever happens, so the interrupt
        # would silently never fire — reject instead of lying to a drill.
        print("--interrupt-after requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.interrupt_after is not None and args.interrupt_after < 1:
        print("--interrupt-after must be >= 1 (checkpoint writes)", file=sys.stderr)
        return 2
    reader = AdjacencyFileReader(args.input)
    # Every backend consumes the file semi-externally: the numpy kernels
    # run over block-batched scans, the python reference streams records.
    try:
        return _run_engine_command(
            PIPELINES[args.pipeline],
            reader,
            args,
            max_rounds=args.max_rounds,
            checkpoint=args.checkpoint,
            resume=args.resume,
            interrupt_after=args.interrupt_after,
        )
    finally:
        reader.close()


def _command_run(args: argparse.Namespace) -> int:
    try:
        run_spec = RunSpec.from_path(args.config)
    except PipelineSpecError as exc:
        print(f"invalid run spec: {exc}", file=sys.stderr)
        return 2
    if (args.resume or run_spec.resume) and run_spec.checkpoint is None:
        print(
            "resuming requires a 'checkpoint' path in the run spec",
            file=sys.stderr,
        )
        return 2
    try:
        reader = AdjacencyFileReader(run_spec.input)
    except (StorageError, OSError) as exc:
        print(f"cannot open input {run_spec.input!r}: {exc}", file=sys.stderr)
        return 2
    # The run spec's backend fills the namespace slot the shared context
    # builder reads, so resolution is identical to the other commands.
    args.backend = run_spec.backend or "auto"
    try:
        return _run_engine_command(
            run_spec.pipeline,
            reader,
            args,
            max_rounds=run_spec.max_rounds,
            checkpoint=run_spec.checkpoint,
            resume=run_spec.resume or args.resume,
            memory_limit_bytes=run_spec.memory_limit_bytes,
        )
    finally:
        reader.close()


#: In-memory comparator algorithms runnable from ``repro-mis compare``.
COMPARATORS = ("local_search", "dynamic_update")


def _command_compare(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    known = set(PIPELINES) | set(COMPARATORS)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    reader = AdjacencyFileReader(args.input)
    # One shared context for every engine run: the reader's I/O counters
    # accumulate across algorithms and the graph is materialised at most
    # once for the in-memory comparators.
    ctx = ExecutionContext.from_args(args, reader)
    rows: List[Dict[str, object]] = []
    for name in names:
        if name in PIPELINES:
            result = PipelineEngine(PIPELINES[name], max_rounds=args.max_rounds).run(ctx)
            rows.append(
                {
                    "algorithm": name,
                    "model": "semi-external",
                    "size": result.size,
                    "memory_bytes": result.memory_bytes,
                    "elapsed_seconds": round(result.elapsed_seconds, 6),
                    "not_applicable": False,
                }
            )
            continue
        # In-memory comparators need the whole graph resident.  Check the
        # modeled footprint against the budget from the file header first,
        # so that emulating a small machine never materialises the graph.
        required = ctx.memory_model.algorithm_bytes(
            name, reader.num_vertices, num_edges=reader.num_edges
        )
        if (
            args.memory_limit_bytes is not None
            and required > args.memory_limit_bytes
        ):
            rows.append(
                {
                    "algorithm": name,
                    "model": "in-memory",
                    "size": "N/A",
                    "memory_bytes": required,
                    "elapsed_seconds": "N/A",
                    "not_applicable": True,
                }
            )
            continue
        comparator_spec = PipelineSpec(name=name, stages=(StageSpec(name),))
        result = PipelineEngine(comparator_spec).run(ctx)
        rows.append(
            {
                "algorithm": name,
                "model": "in-memory",
                "size": result.size,
                "memory_bytes": result.memory_bytes,
                "elapsed_seconds": round(result.elapsed_seconds, 6),
                "not_applicable": False,
            }
        )
    reader.close()

    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(
            format_table(
                ["algorithm", "model", "size", "memory bytes", "seconds"],
                [
                    [
                        row["algorithm"],
                        row["model"],
                        row["size"],
                        row["memory_bytes"],
                        row["elapsed_seconds"],
                    ]
                    for row in rows
                ],
            )
        )
    return 0


def _command_bound(args: argparse.Namespace) -> int:
    reader = AdjacencyFileReader(args.input)
    bound = independence_upper_bound(reader)
    print(f"independence number upper bound: {bound:,}")
    reader.close()
    return 0


def _command_theory(args: argparse.Namespace) -> int:
    params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
    theory = PLRGTheory(params)
    rows = [[key, value] for key, value in theory.summary().items()]
    print(format_table(["quantity", "value"], rows))
    return 0


def _command_import(args: argparse.Namespace) -> int:
    graph, _mapping = import_edge_list(
        args.text_input, args.output, order=args.order, compact=args.compact
    )
    print(
        f"imported {args.text_input} -> {args.output}: "
        f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    edges = export_edge_list(args.input, args.text_output)
    print(f"exported {edges:,} edges to {args.text_output}")
    return 0


def _command_reduce(args: argparse.Namespace) -> int:
    reader = AdjacencyFileReader(args.input)
    ctx = ExecutionContext.from_args(args, reader)
    if args.pipeline is None:
        spec = PipelineSpec(name="reduce", stages=(StageSpec("reduce"),))
    else:
        # Compose reduce with the requested pipeline's stages: the engine
        # solves the kernel and lifts the solution back automatically.  A
        # pipeline that already starts with reduce is used as-is — the
        # kernel is irreducible, so a second reduce pass would only waste
        # a full sweep.
        tail = PIPELINES[args.pipeline]
        if tail.stages[0].stage == "reduce":
            spec = tail
        else:
            spec = PipelineSpec(
                name=f"reduce+{args.pipeline}",
                stages=(StageSpec("reduce"),) + tail.stages,
            )
    result = PipelineEngine(spec, max_rounds=args.max_rounds).run(ctx)
    reduce_stats = result.extras["stages"][0]["extras"]
    rows = [
        ["original vertices", reader.num_vertices],
        ["kernel vertices", int(reduce_stats["kernel_vertices"])],
        ["kernel edges", int(reduce_stats["kernel_edges"])],
        ["forced picks", int(reduce_stats["forced_vertices"])],
        ["folds", int(reduce_stats["folds"])],
        ["isolated-rule applications", int(reduce_stats["isolated"])],
        ["pendant-rule applications", int(reduce_stats["pendant"])],
        ["triangle-rule applications", int(reduce_stats["triangle"])],
    ]
    if args.pipeline is not None:
        rows.append(["solved independent set", result.size])
    print(format_table(["quantity", "value"], rows))
    reader.close()
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.real_vertices, spec.real_edges, spec.avg_degree, spec.disk_size]
        for spec in DATASETS.values()
    ]
    print(format_table(["dataset", "|V|", "|E|", "avg degree", "disk size"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mis`` console script."""

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "solve": _command_solve,
        "compare": _command_compare,
        "run": _command_run,
        "bound": _command_bound,
        "theory": _command_theory,
        "datasets": _command_datasets,
        "import": _command_import,
        "export": _command_export,
        "reduce": _command_reduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
