"""Command-line interface: ``repro-mis`` (or ``python -m repro``).

Sub-commands
------------
``generate``
    Generate a synthetic graph (PLRG, Erdős–Rényi, or a dataset stand-in)
    and write it as a binary adjacency file.
``solve``
    Run one of the pipelines on an adjacency file (or generate a graph on
    the fly) and print the result summary.
``compare``
    Run the semi-external pipelines next to the in-memory comparators
    (local search, DynamicUpdate) on one file — a Table 5/6-style
    side-by-side of sizes, times and modeled memory, with an optional
    memory limit that reproduces the paper's "N/A" entries.
``bound``
    Compute the Algorithm-5 upper bound on the independence number.
``theory``
    Evaluate the PLRG performance model for given (|V|, beta).
``datasets``
    List the Table 4 dataset stand-ins.
``import`` / ``export``
    Convert between SNAP-style text edge lists and the binary adjacency
    format.
``reduce``
    Apply the exact kernelization rules to an adjacency file and report
    the kernel size.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.analysis.plrg_theory import PLRGTheory
from repro.analysis.upper_bound import independence_upper_bound
from repro.baselines.dynamic_update import dynamic_update_mis
from repro.baselines.local_search import local_search_mis
from repro.core.kernels import available_backends
from repro.core.solver import PIPELINES, solve_mis
from repro.storage.memory import MemoryModel
from repro.graphs.datasets import DATASETS, load_dataset
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.graph import Graph
from repro.graphs.plrg import PLRGParameters, plrg_graph
from repro.reporting import format_table
from repro.reductions.kernel import reduce_graph
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.converters import export_edge_list, import_edge_list

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mis`` entry point."""

    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Semi-external maximum independent set toolkit (VLDB 2015 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic graph file")
    generate.add_argument("output", help="path of the binary adjacency file to write")
    generate.add_argument("--model", choices=["plrg", "gnm", "dataset"], default="plrg")
    generate.add_argument("--vertices", type=int, default=10_000)
    generate.add_argument("--edges", type=int, default=30_000, help="gnm only")
    generate.add_argument("--beta", type=float, default=2.1, help="plrg only")
    generate.add_argument("--dataset", default="dblp", help="dataset stand-in name")
    generate.add_argument("--scale", type=float, default=0.001, help="dataset scale factor")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--order",
        choices=["degree", "id"],
        default="degree",
        help="record order of the output file",
    )

    solve = subparsers.add_parser("solve", help="run a pipeline on an adjacency file")
    solve.add_argument("input", help="path of a binary adjacency file")
    solve.add_argument("--pipeline", choices=sorted(PIPELINES), default="two_k_swap")
    solve.add_argument("--max-rounds", type=int, default=None)
    solve.add_argument(
        "--backend",
        choices=["auto"] + list(available_backends()),
        default="auto",
        help="kernel backend; 'numpy' (the default when available) runs "
        "the vectorized kernels over block-batched semi-external scans "
        "of the file, 'python' streams the records one at a time; both "
        "produce bit-identical results and I/O counters",
    )
    solve.add_argument("--json", action="store_true", help="emit the summary as JSON")

    compare = subparsers.add_parser(
        "compare",
        help="run pipelines and in-memory comparators side by side (Tables 5/6)",
    )
    compare.add_argument("input", help="path of a binary adjacency file")
    compare.add_argument(
        "--algorithms",
        default="greedy,one_k_swap,two_k_swap,local_search,dynamic_update",
        help="comma-separated subset of: "
        + ",".join(sorted(set(PIPELINES) | set(COMPARATORS))),
    )
    compare.add_argument("--max-rounds", type=int, default=None)
    compare.add_argument(
        "--backend",
        choices=["auto"] + list(available_backends()),
        default="auto",
        help="kernel backend for the pipelines and the comparators",
    )
    compare.add_argument(
        "--memory-limit-bytes",
        type=int,
        default=None,
        help="emulate a machine with this much RAM: in-memory comparators "
        "whose modeled footprint exceeds it report N/A (Table 6)",
    )
    compare.add_argument("--json", action="store_true", help="emit rows as JSON")

    bound = subparsers.add_parser("bound", help="Algorithm 5 upper bound for a file")
    bound.add_argument("input", help="path of a binary adjacency file")

    theory = subparsers.add_parser("theory", help="evaluate the PLRG performance model")
    theory.add_argument("--vertices", type=int, default=10_000_000)
    theory.add_argument("--beta", type=float, default=2.1)

    subparsers.add_parser("datasets", help="list the Table 4 dataset stand-ins")

    import_cmd = subparsers.add_parser(
        "import", help="convert a text edge list into a binary adjacency file"
    )
    import_cmd.add_argument("text_input", help="path of the text edge list")
    import_cmd.add_argument("output", help="path of the binary adjacency file to write")
    import_cmd.add_argument("--order", choices=["degree", "id"], default="degree")
    import_cmd.add_argument(
        "--compact", action="store_true",
        help="renumber sparse vertex ids to 0..n-1 while importing",
    )

    export_cmd = subparsers.add_parser(
        "export", help="convert a binary adjacency file into a text edge list"
    )
    export_cmd.add_argument("input", help="path of the binary adjacency file")
    export_cmd.add_argument("text_output", help="path of the text edge list to write")

    reduce_cmd = subparsers.add_parser(
        "reduce", help="apply the exact kernelization rules to an adjacency file"
    )
    reduce_cmd.add_argument("input", help="path of the binary adjacency file")
    return parser


def _generate_graph(args: argparse.Namespace) -> Graph:
    """Build the requested in-memory graph for the ``generate`` command."""

    if args.model == "plrg":
        params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
        return plrg_graph(params, seed=args.seed)
    if args.model == "gnm":
        return erdos_renyi_gnm(args.vertices, args.edges, seed=args.seed)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _command_generate(args: argparse.Namespace) -> int:
    graph = _generate_graph(args)
    order = graph.degree_ascending_order() if args.order == "degree" else range(graph.num_vertices)
    device = write_adjacency_file(graph, args.output, order=list(order))
    device.close()
    print(
        f"wrote {args.output}: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    reader = AdjacencyFileReader(args.input)
    backend = None if args.backend == "auto" else args.backend
    # Every backend consumes the file semi-externally: the numpy kernels
    # run over block-batched scans, the python reference streams records.
    result = solve_mis(
        reader, pipeline=args.pipeline, max_rounds=args.max_rounds, backend=backend
    )
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        rows = [[key, value] for key, value in summary.items()]
        print(format_table(["metric", "value"], rows))
    reader.close()
    return 0


#: In-memory comparator algorithms runnable from ``repro-mis compare``.
COMPARATORS = ("local_search", "dynamic_update")


def _command_compare(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    known = set(PIPELINES) | set(COMPARATORS)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    backend = None if args.backend == "auto" else args.backend

    reader = AdjacencyFileReader(args.input)
    graph: Optional[Graph] = None
    rows: List[Dict[str, object]] = []
    for name in names:
        if name in PIPELINES:
            result = solve_mis(
                reader, pipeline=name, max_rounds=args.max_rounds, backend=backend
            )
            rows.append(
                {
                    "algorithm": name,
                    "model": "semi-external",
                    "size": result.size,
                    "memory_bytes": result.memory_bytes,
                    "elapsed_seconds": round(result.elapsed_seconds, 6),
                    "not_applicable": False,
                }
            )
            continue
        # In-memory comparators need the whole graph resident.  Check the
        # modeled footprint against the budget from the file header first,
        # so that emulating a small machine never materialises the graph.
        required = MemoryModel().algorithm_bytes(
            name, reader.num_vertices, num_edges=reader.num_edges
        )
        if (
            args.memory_limit_bytes is not None
            and required > args.memory_limit_bytes
        ):
            rows.append(
                {
                    "algorithm": name,
                    "model": "in-memory",
                    "size": "N/A",
                    "memory_bytes": required,
                    "elapsed_seconds": "N/A",
                    "not_applicable": True,
                }
            )
            continue
        if graph is None:
            graph = reader.to_graph()
        runner = local_search_mis if name == "local_search" else dynamic_update_mis
        result = runner(
            graph,
            memory_limit_bytes=args.memory_limit_bytes,
            backend=backend,
        )
        rows.append(
            {
                "algorithm": name,
                "model": "in-memory",
                "size": result.size,
                "memory_bytes": result.memory_bytes,
                "elapsed_seconds": round(result.elapsed_seconds, 6),
                "not_applicable": False,
            }
        )
    reader.close()

    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(
            format_table(
                ["algorithm", "model", "size", "memory bytes", "seconds"],
                [
                    [
                        row["algorithm"],
                        row["model"],
                        row["size"],
                        row["memory_bytes"],
                        row["elapsed_seconds"],
                    ]
                    for row in rows
                ],
            )
        )
    return 0


def _command_bound(args: argparse.Namespace) -> int:
    reader = AdjacencyFileReader(args.input)
    bound = independence_upper_bound(reader)
    print(f"independence number upper bound: {bound:,}")
    reader.close()
    return 0


def _command_theory(args: argparse.Namespace) -> int:
    params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
    theory = PLRGTheory(params)
    rows = [[key, value] for key, value in theory.summary().items()]
    print(format_table(["quantity", "value"], rows))
    return 0


def _command_import(args: argparse.Namespace) -> int:
    graph, _mapping = import_edge_list(
        args.text_input, args.output, order=args.order, compact=args.compact
    )
    print(
        f"imported {args.text_input} -> {args.output}: "
        f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    edges = export_edge_list(args.input, args.text_output)
    print(f"exported {edges:,} edges to {args.text_output}")
    return 0


def _command_reduce(args: argparse.Namespace) -> int:
    reader = AdjacencyFileReader(args.input)
    reduced = reduce_graph(reader.to_graph())
    rows = [
        ["original vertices", reduced.original_vertices],
        ["kernel vertices", reduced.kernel_size],
        ["kernel edges", reduced.kernel.num_edges],
        ["forced picks", len(reduced.forced_tokens)],
        ["folds", len(reduced.folds)],
        ["isolated-rule applications", reduced.stats.isolated],
        ["pendant-rule applications", reduced.stats.pendant],
        ["triangle-rule applications", reduced.stats.triangle],
    ]
    print(format_table(["quantity", "value"], rows))
    reader.close()
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.real_vertices, spec.real_edges, spec.avg_degree, spec.disk_size]
        for spec in DATASETS.values()
    ]
    print(format_table(["dataset", "|V|", "|E|", "avg degree", "disk size"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mis`` console script."""

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "solve": _command_solve,
        "compare": _command_compare,
        "bound": _command_bound,
        "theory": _command_theory,
        "datasets": _command_datasets,
        "import": _command_import,
        "export": _command_export,
        "reduce": _command_reduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
