"""Command-line interface: ``repro-mis`` (or ``python -m repro``).

Sub-commands
------------
``generate``
    Generate a synthetic graph (PLRG, Erdős–Rényi, or a dataset stand-in)
    and write it as a binary adjacency file.
``solve``
    Run one of the pipelines on an adjacency file (or generate a graph on
    the fly) and print the result summary.
``watch``
    Hold a graph open and keep its MIS valid over an edge-update stream
    (``--updates FILE``): batched application, per-batch checkpoints, and
    ``--resume`` for bit-identical recovery after a kill.
``compare``
    Run the semi-external pipelines next to the in-memory comparators
    (local search, DynamicUpdate) on one file — a Table 5/6-style
    side-by-side of sizes, times and modeled memory, with an optional
    memory limit that reproduces the paper's "N/A" entries.
``bound``
    Compute the Algorithm-5 upper bound on the independence number.
``theory``
    Evaluate the PLRG performance model for given (|V|, beta).
``datasets``
    List the Table 4 dataset stand-ins.
``import`` / ``export``
    Convert between SNAP-style text edge lists and the binary adjacency
    format.
``convert``
    Convert an adjacency file to the memory-mapped binary CSR artifact
    (``--to-binary``; zero-parse startup, pages shared across worker
    processes, graphs beyond RAM) or back (``--to-adjacency``).  Every
    file-consuming command auto-detects either format by magic.
``reduce``
    Apply the exact kernelization rules to an adjacency file and report
    the kernel size; with ``--pipeline`` the kernel is solved through the
    engine (``reduce → …``) and the lifted solution is reported too.
``run``
    Execute a declarative run spec (``--config run.json``) or a whole
    directory of them (``--config-dir specs/``, aggregating the
    per-stage telemetry of the sweep into one report): pipeline
    composition, input, backend, checkpointing — the scenario runner.
``serve`` / ``submit`` / ``status`` / ``results`` / ``cancel``
    Solver-as-a-service over a service directory: ``serve`` runs the
    scheduler + process worker pool (crash-recovering, with a
    digest-keyed result cache), ``submit`` queues run specs (single
    ``--config`` or batch ``--config-dir``; ``--follow`` streams the
    job's event journal live), and the remaining verbs inspect or
    cancel jobs.  The client verbs work purely against the on-disk
    store, so they function whether or not a daemon is up.
``metrics``
    Render the observability layer's metric series — from a service
    directory (queue depth, cache hit-rate, heartbeat ages, replayed
    per-stage telemetry) or from a snapshot file written by ``solve``/
    ``watch --metrics-out`` — as a table, JSON, or Prometheus text
    exposition (``--prometheus``).  ``solve`` and ``watch`` also accept
    ``--trace FILE`` (Chrome trace-event JSON for Perfetto) and
    ``--no-obs`` (disable instrumentation entirely).

Every command that executes solver passes resolves its kernel backend
through one shared helper (``--backend`` flag → ``REPRO_KERNEL_BACKEND``
→ auto-detection) and runs on the stage-based pipeline engine; ``solve``
and ``run`` support ``--checkpoint``/``--resume`` for restartable runs
(an interrupted run exits with status 3 and resumes bit-identically) and
``--checkpoint-every-seconds`` to throttle round checkpoints on
short-round jobs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.analysis.plrg_theory import PLRGTheory
from repro.analysis.upper_bound import independence_upper_bound
from repro.core.result import MISResult
from repro.core.solver import PIPELINES
from repro.errors import (
    CheckpointError,
    GraphError,
    JobNotFoundError,
    JobStateError,
    MemoryBudgetError,
    PipelineInterrupted,
    PipelineSpecError,
    ServiceError,
    StorageError,
    StreamError,
)
from repro.obs import (
    MetricsRegistry,
    NULL_OBS,
    Observability,
    SpanTracer,
    follow_journal,
)
from repro.pipeline.context import (
    ExecutionContext,
    add_execution_arguments,
    resolve_backend_request,
)
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.spec import PipelineSpec, RunSpec, StageSpec, iter_run_specs
from repro.pipeline.stream import StreamSession
from repro.graphs.datasets import DATASETS, load_dataset
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.graph import Graph
from repro.graphs.plrg import PLRGParameters, plrg_graph
from repro.reporting import format_bytes, format_table
from repro.service import ServiceClient, ServiceConfig, SolverService
from repro.service.cache import input_digest
from repro.service.jobstore import JobStore
from repro.service.metrics import build_service_registry
from repro.storage.adjacency_file import write_adjacency_file
from repro.storage.binary_format import MemmapAdjacencySource
from repro.storage.converters import (
    adjacency_to_binary,
    binary_to_adjacency,
    export_edge_list,
    import_edge_list,
)
from repro.storage.registry import open_adjacency_source
from repro.storage.scan import AdjacencyScanSource

__all__ = ["main", "build_parser"]

#: Exit status of a run interrupted by ``--interrupt-after`` (the
#: checkpoint on disk is complete; re-run with ``--resume``).
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mis`` entry point."""

    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Semi-external maximum independent set toolkit (VLDB 2015 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic graph file")
    generate.add_argument("output", help="path of the binary adjacency file to write")
    generate.add_argument("--model", choices=["plrg", "gnm", "dataset"], default="plrg")
    generate.add_argument("--vertices", type=int, default=10_000)
    generate.add_argument("--edges", type=int, default=30_000, help="gnm only")
    generate.add_argument("--beta", type=float, default=2.1, help="plrg only")
    generate.add_argument("--dataset", default="dblp", help="dataset stand-in name")
    generate.add_argument("--scale", type=float, default=0.001, help="dataset scale factor")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--order",
        choices=["degree", "id"],
        default="degree",
        help="record order of the output file",
    )

    solve = subparsers.add_parser("solve", help="run a pipeline on an adjacency file")
    solve.add_argument("input", help="path of a binary adjacency file")
    solve.add_argument("--pipeline", choices=sorted(PIPELINES), default="two_k_swap")
    solve.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(solve)
    solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a versioned checkpoint file after every stage and every "
        "swap round, making the run restartable",
    )
    solve.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from --checkpoint instead of starting over "
        "(bit-identical final result and I/O accounting)",
    )
    solve.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="testing/drill knob: exit with status 3 right after the N-th "
        "checkpoint write",
    )
    solve.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        default=None,
        metavar="N",
        help="write round checkpoints at most every N seconds instead of "
        "every round (stage boundaries always checkpoint); resuming from "
        "an older round checkpoint replays the skipped rounds and stays "
        "bit-identical",
    )
    solve.add_argument("--json", action="store_true", help="emit the summary as JSON")
    _add_obs_arguments(solve)

    watch = subparsers.add_parser(
        "watch",
        help="hold a graph open and keep its MIS valid over an edge-update "
        "stream",
    )
    watch.add_argument("input", help="path of a binary adjacency file")
    watch.add_argument(
        "--updates",
        required=True,
        metavar="FILE",
        help="edge-update file: one '+ u v' (insert) or '- u v' (delete) "
        "per line, '#' comments allowed; '-' reads the stream from stdin "
        "(checkpointable but never resumable)",
    )
    watch.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default="two_k_swap",
        help="pipeline used to compute the initial set (and for rebuilds)",
    )
    add_execution_arguments(watch)
    watch.add_argument(
        "--batch-size",
        type=int,
        default=1024,
        metavar="N",
        help="updates applied (and checkpointed) per batch; bounds per-batch "
        "latency",
    )
    watch.add_argument(
        "--compact-threshold",
        type=int,
        default=None,
        metavar="N",
        help="fold the delta overlay back into fresh CSR arrays once it "
        "holds N directed entries (default: never)",
    )
    watch.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a versioned checkpoint (maintainer state + stream "
        "cursor) after every batch, making the session resumable",
    )
    watch.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed session from --checkpoint; the final set is "
        "bit-identical to an uninterrupted run",
    )
    watch.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="testing/drill knob: exit with status 3 right after the N-th "
        "checkpoint write",
    )
    watch.add_argument(
        "--quiet", action="store_true", help="suppress the per-batch lines"
    )
    watch.add_argument(
        "--json", action="store_true", help="emit the final summary as JSON"
    )
    _add_obs_arguments(watch)

    compare = subparsers.add_parser(
        "compare",
        help="run pipelines and in-memory comparators side by side (Tables 5/6)",
    )
    compare.add_argument("input", help="path of a binary adjacency file")
    compare.add_argument(
        "--algorithms",
        default="greedy,one_k_swap,two_k_swap,local_search,dynamic_update",
        help="comma-separated subset of: "
        + ",".join(sorted(set(PIPELINES) | set(COMPARATORS))),
    )
    compare.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(compare, include_memory_limit=True)
    compare.add_argument("--json", action="store_true", help="emit rows as JSON")

    run = subparsers.add_parser(
        "run", help="execute declarative run specs (scenario runner)"
    )
    run_source = run.add_mutually_exclusive_group(required=True)
    run_source.add_argument(
        "--config",
        metavar="PATH",
        help="JSON run spec: {'pipeline': name-or-inline-spec, 'input': file, "
        "and optional 'backend', 'workers', 'max_rounds', "
        "'memory_limit_bytes', 'checkpoint', 'resume', "
        "'checkpoint_every_seconds'}",
    )
    run_source.add_argument(
        "--config-dir",
        metavar="DIR",
        help="execute every *.json run spec in DIR (sorted name order) and "
        "aggregate the per-stage telemetry of the sweep into one report",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the spec's checkpoint (overrides 'resume': false; "
        "single --config only)",
    )
    run.add_argument("--json", action="store_true", help="emit the summary as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the solver-service daemon over a service directory"
    )
    serve.add_argument("service_dir", help="service directory (created if missing)")
    serve.add_argument(
        "--job-workers",
        "--workers",
        dest="job_workers",
        type=int,
        default=2,
        help="concurrent job worker processes (one per job; a job's own "
        "intra-job parallelism comes from the 'workers' field of its run "
        "spec). --workers is accepted as a legacy alias",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="scheduler poll interval",
    )
    serve.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        default=30.0,
        metavar="N",
        help="default round-checkpoint cadence for jobs whose spec does not "
        "set its own (0 = checkpoint every round)",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=100,
        help="crash-restarts allowed per job before it is failed",
    )
    serve.add_argument(
        "--cache-limit-bytes",
        type=int,
        default=None,
        metavar="N",
        help="bound the result cache: least-recently-used entries are "
        "evicted past N bytes (default: unbounded)",
    )
    serve.add_argument(
        "--heartbeat-timeout-seconds",
        type=float,
        default=None,
        metavar="N",
        help="kill and requeue a worker whose progress heartbeat (beaten "
        "every swap round and stage boundary) is older than N seconds "
        "while its pid is still alive; size N above the longest single "
        "round expected (default: disabled)",
    )
    serve.add_argument(
        "--drain",
        action="store_true",
        help="exit once every job reaches a terminal state (batch mode)",
    )

    submit = subparsers.add_parser(
        "submit", help="queue run specs on a service directory"
    )
    submit.add_argument("service_dir", help="service directory (created if missing)")
    submit_source = submit.add_mutually_exclusive_group(required=True)
    submit_source.add_argument("--config", metavar="PATH", help="one JSON run spec")
    submit_source.add_argument(
        "--config-dir",
        metavar="DIR",
        help="batch-submit every *.json run spec in DIR",
    )
    submit.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="crash-drill knob (single --config only): the worker dies after "
        "every N checkpoint writes and the job finishes through resume",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the submitted job(s) reach a terminal state",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-job wait timeout with --wait",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's event journal (stages, batches, lifecycle) "
        "until it reaches a terminal state (single --config only)",
    )
    submit.add_argument("--json", action="store_true", help="emit records as JSON")

    status = subparsers.add_parser(
        "status", help="show job states of a service directory"
    )
    status.add_argument("service_dir", help="an existing service directory")
    status.add_argument("job_id", nargs="?", default=None, help="one job id")
    status.add_argument("--json", action="store_true", help="emit records as JSON")
    status.add_argument(
        "--metrics",
        action="store_true",
        help="also render the store-derived metrics (queue depth, cache "
        "hit-rate, heartbeat ages, per-stage telemetry)",
    )

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="render metrics from a service directory or a saved snapshot",
    )
    metrics_cmd.add_argument(
        "target",
        help="a service directory (live store-derived series) or a metrics "
        "snapshot file written by solve/watch --metrics-out",
    )
    metrics_format = metrics_cmd.add_mutually_exclusive_group()
    metrics_format.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format",
    )
    metrics_format.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )

    results_cmd = subparsers.add_parser(
        "results", help="print the result of a finished service job"
    )
    results_cmd.add_argument("service_dir", help="an existing service directory")
    results_cmd.add_argument("job_id", help="job id (state must be done)")
    results_cmd.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    cancel = subparsers.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("service_dir", help="an existing service directory")
    cancel.add_argument("job_id", help="job id to cancel")

    bound = subparsers.add_parser("bound", help="Algorithm 5 upper bound for a file")
    bound.add_argument("input", help="path of a binary adjacency file")

    theory = subparsers.add_parser("theory", help="evaluate the PLRG performance model")
    theory.add_argument("--vertices", type=int, default=10_000_000)
    theory.add_argument("--beta", type=float, default=2.1)

    subparsers.add_parser("datasets", help="list the Table 4 dataset stand-ins")

    import_cmd = subparsers.add_parser(
        "import", help="convert a text edge list into a binary adjacency file"
    )
    import_cmd.add_argument("text_input", help="path of the text edge list")
    import_cmd.add_argument("output", help="path of the binary adjacency file to write")
    import_cmd.add_argument("--order", choices=["degree", "id"], default="degree")
    import_cmd.add_argument(
        "--compact", action="store_true",
        help="renumber sparse vertex ids to 0..n-1 while importing",
    )

    export_cmd = subparsers.add_parser(
        "export", help="convert a binary adjacency file into a text edge list"
    )
    export_cmd.add_argument("input", help="path of the binary adjacency file")
    export_cmd.add_argument("text_output", help="path of the text edge list to write")

    convert_cmd = subparsers.add_parser(
        "convert",
        help="convert between the adjacency format and the memory-mapped "
        "binary CSR artifact",
    )
    convert_cmd.add_argument("input", help="path of the file to convert")
    convert_cmd.add_argument("output", help="path of the converted file to write")
    convert_direction = convert_cmd.add_mutually_exclusive_group(required=True)
    convert_direction.add_argument(
        "--to-binary",
        action="store_true",
        help="adjacency file -> binary CSR artifact (zero-parse startup, "
        "memory-mapped, digest-keyed)",
    )
    convert_direction.add_argument(
        "--to-adjacency",
        action="store_true",
        help="binary CSR artifact -> adjacency file (the exact inverse)",
    )

    reduce_cmd = subparsers.add_parser(
        "reduce", help="apply the exact kernelization rules to an adjacency file"
    )
    reduce_cmd.add_argument("input", help="path of the binary adjacency file")
    reduce_cmd.add_argument(
        "--pipeline",
        choices=sorted(PIPELINES),
        default=None,
        help="additionally solve the kernel with this pipeline (the engine "
        "runs reduce followed by the pipeline's stages and lifts the "
        "solution back to the original graph)",
    )
    reduce_cmd.add_argument("--max-rounds", type=int, default=None)
    add_execution_arguments(reduce_cmd)
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags of the solver-running commands."""

    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON file (open in Perfetto or "
        "chrome://tracing) with spans for stages, swap rounds, kernel "
        "passes, stream batches and checkpoint writes",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics registry snapshot as JSON "
        "(render it later with 'repro-mis metrics FILE')",
    )
    group.add_argument(
        "--no-obs",
        action="store_true",
        help="disable the observability layer entirely (metrics, spans); "
        "the overhead guard baseline",
    )


def _build_obs(args: argparse.Namespace) -> Observability:
    """Build the run's observability bundle from the CLI flags.

    Flag conflicts are validated by the caller via
    :func:`_check_obs_flags` before any file is opened.
    """

    if args.no_obs:
        return NULL_OBS
    tracer = SpanTracer() if args.trace else None
    return Observability(registry=MetricsRegistry(), tracer=tracer)


def _check_obs_flags(args: argparse.Namespace) -> Optional[str]:
    """The flag-conflict message, or ``None`` when the combination is valid."""

    if args.no_obs and (args.trace or args.metrics_out):
        return "--no-obs cannot be combined with --trace/--metrics-out"
    return None


def _finish_obs(args: argparse.Namespace, obs: Observability) -> None:
    """Write the requested trace/metrics artifacts after a finished run."""

    if args.trace:
        obs.tracer.write(args.trace)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(obs.registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _generate_graph(args: argparse.Namespace) -> Graph:
    """Build the requested in-memory graph for the ``generate`` command."""

    if args.model == "plrg":
        params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
        return plrg_graph(params, seed=args.seed)
    if args.model == "gnm":
        return erdos_renyi_gnm(args.vertices, args.edges, seed=args.seed)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _command_generate(args: argparse.Namespace) -> int:
    graph = _generate_graph(args)
    order = graph.degree_ascending_order() if args.order == "degree" else range(graph.num_vertices)
    device = write_adjacency_file(graph, args.output, order=list(order))
    device.close()
    print(
        f"wrote {args.output}: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _print_result(result: MISResult, as_json: bool) -> None:
    """Shared ``solve``/``run`` output: the summary plus per-stage telemetry."""

    summary = result.summary()
    stages = result.extras.get("stages", [])
    if as_json:
        summary["stages"] = stages
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["metric", "value"], rows))
    if stages:
        print(
            format_table(
                ["stage", "algorithm", "size", "rounds", "seconds", "scans"],
                [
                    [
                        entry["stage"],
                        entry["algorithm"],
                        entry["size"],
                        entry["rounds"],
                        entry["elapsed_seconds"],
                        entry["io"]["sequential_scans"],
                    ]
                    for entry in stages
                ],
            )
        )


def _execute_engine(
    spec: PipelineSpec,
    reader: AdjacencyScanSource,
    args: argparse.Namespace,
    max_rounds: Optional[int],
    checkpoint: Optional[str],
    resume: bool,
    interrupt_after: Optional[int] = None,
    memory_limit_bytes: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    obs: Optional[Observability] = None,
) -> MISResult:
    """Build the context and run the engine — shared by solve/run/sweep."""

    ctx = ExecutionContext.from_args(args, reader)
    if memory_limit_bytes is not None:
        ctx.memory_limit_bytes = memory_limit_bytes
    engine = PipelineEngine(
        spec,
        max_rounds=max_rounds,
        checkpoint_path=checkpoint,
        resume=resume,
        interrupt_after=interrupt_after,
        checkpoint_every_seconds=checkpoint_every_seconds,
        obs=obs,
    )
    return engine.run(ctx)


def _run_engine_command(
    spec: PipelineSpec,
    reader: AdjacencyScanSource,
    args: argparse.Namespace,
    max_rounds: Optional[int],
    checkpoint: Optional[str],
    resume: bool,
    interrupt_after: Optional[int] = None,
    memory_limit_bytes: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    obs: Optional[Observability] = None,
) -> int:
    """Run the engine and print the result (solve/run)."""

    try:
        result = _execute_engine(
            spec,
            reader,
            args,
            max_rounds=max_rounds,
            checkpoint=checkpoint,
            resume=resume,
            interrupt_after=interrupt_after,
            memory_limit_bytes=memory_limit_bytes,
            checkpoint_every_seconds=checkpoint_every_seconds,
            obs=obs,
        )
    except PipelineInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_INTERRUPTED
    except (PipelineSpecError, CheckpointError, MemoryBudgetError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_result(result, args.json)
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.interrupt_after is not None and args.checkpoint is None:
        # Without a checkpoint no write ever happens, so the interrupt
        # would silently never fire — reject instead of lying to a drill.
        print("--interrupt-after requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.interrupt_after is not None and args.interrupt_after < 1:
        print("--interrupt-after must be >= 1 (checkpoint writes)", file=sys.stderr)
        return 2
    if (
        args.checkpoint_every_seconds is not None
        and args.checkpoint_every_seconds <= 0
    ):
        print("--checkpoint-every-seconds must be positive", file=sys.stderr)
        return 2
    conflict = _check_obs_flags(args)
    if conflict:
        print(conflict, file=sys.stderr)
        return 2
    obs = _build_obs(args)
    reader = open_adjacency_source(args.input)
    # Every backend consumes the file semi-externally: the numpy kernels
    # run over block-batched scans, the python reference streams records.
    try:
        code = _run_engine_command(
            PIPELINES[args.pipeline],
            reader,
            args,
            max_rounds=args.max_rounds,
            checkpoint=args.checkpoint,
            resume=args.resume,
            interrupt_after=args.interrupt_after,
            checkpoint_every_seconds=args.checkpoint_every_seconds,
            obs=obs,
        )
    finally:
        reader.close()
    if code == 0:
        _finish_obs(args, obs)
    return code


def _command_watch(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.resume and args.updates == "-":
        print(
            "--resume cannot be combined with --updates -: a stdin stream "
            "is consumed on first read and can never be replayed",
            file=sys.stderr,
        )
        return 2
    if args.interrupt_after is not None and args.checkpoint is None:
        print("--interrupt-after requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.interrupt_after is not None and args.interrupt_after < 1:
        print("--interrupt-after must be >= 1 (checkpoint writes)", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.compact_threshold is not None and args.compact_threshold < 1:
        print("--compact-threshold must be >= 1", file=sys.stderr)
        return 2
    conflict = _check_obs_flags(args)
    if conflict:
        print(conflict, file=sys.stderr)
        return 2
    obs = _build_obs(args)
    try:
        reader = open_adjacency_source(args.input)
    except (StorageError, OSError) as exc:
        print(f"cannot open input {args.input!r}: {exc}", file=sys.stderr)
        return 2
    try:
        # The graph digest pins the checkpoint to this input's content:
        # resuming against a different (or edited) graph is refused.
        digest = input_digest(args.input)
        ctx = ExecutionContext.create(
            reader, backend=resolve_backend_request(args.backend)
        )
        session = StreamSession(
            ctx.materialize_graph(),
            args.updates,
            graph_digest=digest,
            pipeline=args.pipeline,
            backend=resolve_backend_request(args.backend),
            batch_size=args.batch_size,
            compact_threshold=args.compact_threshold,
            checkpoint=args.checkpoint,
            resume=args.resume,
            interrupt_after=args.interrupt_after,
            obs=obs,
        )
        total = session.total_batches
        for report in session.process():
            if not args.quiet and not args.json:
                compacted = ", compacted" if report.compacted else ""
                waves = (
                    f", waves={report.sub_waves}" if report.sub_waves else ""
                )
                print(
                    f"batch {report.batch_index + 1}/{total}: "
                    f"+{report.insertions}/-{report.deletions}, "
                    f"set={report.set_size}, "
                    f"evict={report.evictions}, "
                    f"overlay={report.overlay_size}{waves}{compacted}"
                )
    except PipelineInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_INTERRUPTED
    except (StreamError, GraphError, CheckpointError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        reader.close()
    summary = session.result()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        stats = summary["stats"]
        print(f"pipeline        : {summary['pipeline']}")
        print(f"batches         : {summary['batches_applied']}")
        print(
            f"updates         : +{stats['edges_inserted']}"
            f"/-{stats['edges_deleted']}"
        )
        print(f"evictions       : {stats['evictions']}")
        print(f"conflict density: {summary['conflict_density']:.3f}")
        wave = session.maintainer.wave
        if wave.sub_waves:
            print(
                f"wave scheduler  : {wave.sub_waves} sub-waves over "
                f"{wave.chunks} chunks, "
                f"{wave.batched_evictions} batched evictions, "
                f"{wave.scalar_fallbacks} scalar fallbacks"
            )
        print(f"compactions     : {stats['compactions']}")
        print(f"final set size  : {summary['set_size']}")
        print(f"elapsed seconds : {summary['elapsed_seconds']:.3f}")
    _finish_obs(args, obs)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.config_dir is not None:
        if args.resume:
            print("--resume requires a single --config", file=sys.stderr)
            return 2
        return _command_run_directory(args)
    try:
        run_spec = RunSpec.from_path(args.config)
    except PipelineSpecError as exc:
        print(f"invalid run spec: {exc}", file=sys.stderr)
        return 2
    if (args.resume or run_spec.resume) and run_spec.checkpoint is None:
        print(
            "resuming requires a 'checkpoint' path in the run spec",
            file=sys.stderr,
        )
        return 2
    try:
        reader = open_adjacency_source(run_spec.input)
    except (StorageError, OSError) as exc:
        print(f"cannot open input {run_spec.input!r}: {exc}", file=sys.stderr)
        return 2
    # The run spec's backend and worker count fill the namespace slots the
    # shared context builder reads, so resolution is identical to the
    # other commands.
    args.backend = run_spec.backend or "auto"
    args.workers = run_spec.workers
    try:
        return _run_engine_command(
            run_spec.pipeline,
            reader,
            args,
            max_rounds=run_spec.max_rounds,
            checkpoint=run_spec.checkpoint,
            resume=run_spec.resume or args.resume,
            memory_limit_bytes=run_spec.memory_limit_bytes,
            checkpoint_every_seconds=run_spec.checkpoint_every_seconds,
        )
    finally:
        reader.close()


def _command_run_directory(args: argparse.Namespace) -> int:
    """Scenario sweep: run every spec in a directory, aggregate telemetry."""

    try:
        specs = iter_run_specs(args.config_dir)
    except PipelineSpecError as exc:
        print(f"invalid run spec: {exc}", file=sys.stderr)
        return 2

    runs: List[Dict[str, object]] = []
    aggregate: Dict[str, Dict[str, object]] = {}
    for path, run_spec in specs:
        if run_spec.resume and run_spec.checkpoint is None:
            print(
                f"{path}: resuming requires a 'checkpoint' path in the run spec",
                file=sys.stderr,
            )
            return 2
        try:
            reader = open_adjacency_source(run_spec.input)
        except (StorageError, OSError) as exc:
            print(
                f"{path}: cannot open input {run_spec.input!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        args.backend = run_spec.backend or "auto"
        args.workers = run_spec.workers
        try:
            result = _execute_engine(
                run_spec.pipeline,
                reader,
                args,
                max_rounds=run_spec.max_rounds,
                checkpoint=run_spec.checkpoint,
                resume=run_spec.resume,
                memory_limit_bytes=run_spec.memory_limit_bytes,
                checkpoint_every_seconds=run_spec.checkpoint_every_seconds,
            )
        except (PipelineSpecError, CheckpointError, MemoryBudgetError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        finally:
            reader.close()
        stages = result.extras.get("stages", [])
        runs.append(
            {
                "config": path,
                "input": run_spec.input,
                "summary": result.summary(),
                "stages": stages,
            }
        )
        for entry in stages:
            agg = aggregate.setdefault(
                entry["stage"],
                {
                    "stage": entry["stage"],
                    "executions": 0,
                    "rounds": 0,
                    "elapsed_seconds": 0.0,
                    "sequential_scans": 0,
                    "bytes_read": 0,
                    "random_vertex_lookups": 0,
                },
            )
            agg["executions"] += 1
            agg["rounds"] += entry["rounds"]
            agg["elapsed_seconds"] = round(
                agg["elapsed_seconds"] + entry["elapsed_seconds"], 6
            )
            agg["sequential_scans"] += entry["io"]["sequential_scans"]
            agg["bytes_read"] += entry["io"]["bytes_read"]
            agg["random_vertex_lookups"] += entry["io"]["random_vertex_lookups"]
    aggregate_rows = [aggregate[name] for name in sorted(aggregate)]

    if args.json:
        print(
            json.dumps(
                {"runs": runs, "aggregate_stages": aggregate_rows},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        format_table(
            ["config", "algorithm", "size", "rounds", "seconds", "scans"],
            [
                [
                    row["config"],
                    row["summary"]["algorithm"],
                    row["summary"]["size"],
                    row["summary"]["rounds"],
                    row["summary"]["elapsed_seconds"],
                    row["summary"]["sequential_scans"],
                ]
                for row in runs
            ],
            title=f"scenario sweep: {len(runs)} runs from {args.config_dir}",
        )
    )
    print()
    print(
        format_table(
            [
                "stage",
                "executions",
                "rounds",
                "seconds",
                "scans",
                "bytes read",
                "lookups",
            ],
            [
                [
                    row["stage"],
                    row["executions"],
                    row["rounds"],
                    row["elapsed_seconds"],
                    row["sequential_scans"],
                    row["bytes_read"],
                    row["random_vertex_lookups"],
                ]
                for row in aggregate_rows
            ],
            title="aggregate per-stage telemetry",
        )
    )
    return 0


#: In-memory comparator algorithms runnable from ``repro-mis compare``.
COMPARATORS = ("local_search", "dynamic_update")


def _command_compare(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    known = set(PIPELINES) | set(COMPARATORS)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    reader = open_adjacency_source(args.input)
    # One shared context for every engine run: the reader's I/O counters
    # accumulate across algorithms and the graph is materialised at most
    # once for the in-memory comparators.
    ctx = ExecutionContext.from_args(args, reader)
    rows: List[Dict[str, object]] = []
    for name in names:
        if name in PIPELINES:
            result = PipelineEngine(PIPELINES[name], max_rounds=args.max_rounds).run(ctx)
            rows.append(
                {
                    "algorithm": name,
                    "model": "semi-external",
                    "size": result.size,
                    "memory_bytes": result.memory_bytes,
                    "elapsed_seconds": round(result.elapsed_seconds, 6),
                    "not_applicable": False,
                }
            )
            continue
        # In-memory comparators need the whole graph resident.  Check the
        # modeled footprint against the budget from the file header first,
        # so that emulating a small machine never materialises the graph.
        required = ctx.memory_model.algorithm_bytes(
            name, reader.num_vertices, num_edges=reader.num_edges
        )
        if (
            args.memory_limit_bytes is not None
            and required > args.memory_limit_bytes
        ):
            rows.append(
                {
                    "algorithm": name,
                    "model": "in-memory",
                    "size": "N/A",
                    "memory_bytes": required,
                    "elapsed_seconds": "N/A",
                    "not_applicable": True,
                }
            )
            continue
        comparator_spec = PipelineSpec(name=name, stages=(StageSpec(name),))
        result = PipelineEngine(comparator_spec).run(ctx)
        rows.append(
            {
                "algorithm": name,
                "model": "in-memory",
                "size": result.size,
                "memory_bytes": result.memory_bytes,
                "elapsed_seconds": round(result.elapsed_seconds, 6),
                "not_applicable": False,
            }
        )
    reader.close()

    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(
            format_table(
                ["algorithm", "model", "size", "memory bytes", "seconds"],
                [
                    [
                        row["algorithm"],
                        row["model"],
                        row["size"],
                        row["memory_bytes"],
                        row["elapsed_seconds"],
                    ]
                    for row in rows
                ],
            )
        )
    return 0


def _record_row(client: ServiceClient, record) -> List[object]:
    return [
        record.job_id,
        record.state,
        record.spec.get("pipeline", {}).get("name", "?"),
        record.spec.get("backend") or "auto",
        record.attempts,
        "yes" if record.cache_hit else "no",
        format_bytes(client.checkpoint_size(record.job_id)),
        record.error or "",
    ]


_STATUS_HEADERS = [
    "job",
    "state",
    "pipeline",
    "backend",
    "attempts",
    "cache hit",
    "checkpoint",
    "error",
]


def _command_serve(args: argparse.Namespace) -> int:
    if args.checkpoint_every_seconds < 0:
        print(
            "--checkpoint-every-seconds must be >= 0 (0 = every round)",
            file=sys.stderr,
        )
        return 2
    if args.cache_limit_bytes is not None and args.cache_limit_bytes < 0:
        print("--cache-limit-bytes must be >= 0", file=sys.stderr)
        return 2
    if (
        args.heartbeat_timeout_seconds is not None
        and args.heartbeat_timeout_seconds <= 0
    ):
        print("--heartbeat-timeout-seconds must be positive", file=sys.stderr)
        return 2
    try:
        service = SolverService(
            args.service_dir,
            ServiceConfig(
                workers=args.job_workers,
                poll_interval_seconds=args.poll_interval,
                checkpoint_every_seconds=args.checkpoint_every_seconds or None,
                max_restarts=args.max_restarts,
                cache_limit_bytes=args.cache_limit_bytes,
                heartbeat_timeout_seconds=args.heartbeat_timeout_seconds,
            ),
        )
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"serving {args.service_dir} with {args.job_workers} job worker(s)"
        + (" until drained" if args.drain else ""),
        file=sys.stderr,
    )
    try:
        service.serve_forever(drain=args.drain)
    except KeyboardInterrupt:
        # Workers keep running as orphans and finish their jobs; the next
        # daemon adopts or resumes them — stopping the loop loses nothing.
        print("interrupted; jobs resume on the next serve", file=sys.stderr)
    return 0


def _follow_job(client: ServiceClient, job_id: str, timeout: float) -> int:
    """Tail one job's event journal until its record is terminal.

    Prints each journal record as a ``[event] key=value ...`` line —
    per-stage progress for solve jobs, per-batch progress for stream
    jobs, and the scheduler's lifecycle edges (requeues, cache hits) —
    without polling or parsing worker logs.
    """

    path = client.store.journal_path(job_id)

    def _terminal() -> bool:
        return client.status(job_id).is_terminal()

    try:
        for event in follow_journal(path, stop=_terminal, timeout_seconds=timeout):
            name = event.get("event", "?")
            fields = " ".join(
                f"{key}={value}"
                for key, value in event.items()
                if key not in ("v", "ts", "event", "job_id")
            )
            print(f"[{name}] {fields}".rstrip(), flush=True)
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    if args.interrupt_after is not None and args.config_dir is not None:
        print("--interrupt-after requires a single --config", file=sys.stderr)
        return 2
    if args.follow and args.config_dir is not None:
        print("--follow requires a single --config", file=sys.stderr)
        return 2
    client = ServiceClient(args.service_dir)
    try:
        if args.config_dir is not None:
            records = [
                record for _path, record in client.submit_directory(args.config_dir)
            ]
        else:
            records = [
                client.submit(args.config, interrupt_after=args.interrupt_after)
            ]
    except (PipelineSpecError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.follow:
        code = _follow_job(client, records[0].job_id, args.timeout)
        if code:
            return code
        records = [client.status(records[0].job_id)]
    if args.wait:
        try:
            records = [
                client.wait(record.job_id, timeout_seconds=args.timeout)
                for record in records
            ]
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True))
    else:
        print(
            format_table(
                _STATUS_HEADERS, [_record_row(client, r) for r in records]
            )
        )
    failed = [r for r in records if r.state == "failed"]
    return 1 if failed else 0


def _command_status(args: argparse.Namespace) -> int:
    try:
        client = ServiceClient(args.service_dir, create=False)
        if args.job_id is not None:
            records = [client.status(args.job_id)]
        else:
            records = client.list()
    except (JobNotFoundError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    registry = build_service_registry(client.store) if args.metrics else None
    if args.json:
        document: object = [r.to_dict() for r in records]
        if registry is not None:
            document = {"jobs": document, "metrics": registry.snapshot()}
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            format_table(
                _STATUS_HEADERS, [_record_row(client, r) for r in records]
            )
        )
        if registry is not None:
            print()
            print(format_table(["series", "type", "value"], registry.render_rows()))
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    """Render metrics from a service directory or a saved snapshot file."""

    target = args.target
    try:
        if os.path.isdir(target):
            registry = build_service_registry(JobStore(target, create=False))
        else:
            with open(target, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            registry = MetricsRegistry.from_snapshot(snapshot)
    except (OSError, json.JSONDecodeError, ServiceError, ValueError) as exc:
        print(f"cannot load metrics from {target!r}: {exc}", file=sys.stderr)
        return 2
    if args.prometheus:
        text = registry.render_prometheus()
        sys.stdout.write(text if text.endswith("\n") or not text else text + "\n")
    elif args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(format_table(["series", "type", "value"], registry.render_rows()))
    return 0


def _command_results(args: argparse.Namespace) -> int:
    try:
        client = ServiceClient(args.service_dir, create=False)
        result = client.result(args.job_id)
    except (JobStateError, JobNotFoundError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_result(result, args.json)
    return 0


def _command_cancel(args: argparse.Namespace) -> int:
    try:
        client = ServiceClient(args.service_dir, create=False)
        record = client.cancel(args.job_id)
    except (JobStateError, JobNotFoundError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if record.state == "cancelled":
        print(f"job {record.job_id} cancelled")
    else:
        print(f"job {record.job_id} cancel requested (worker will be stopped)")
    return 0


def _command_bound(args: argparse.Namespace) -> int:
    reader = open_adjacency_source(args.input)
    bound = independence_upper_bound(reader)
    print(f"independence number upper bound: {bound:,}")
    reader.close()
    return 0


def _command_theory(args: argparse.Namespace) -> int:
    params = PLRGParameters.from_vertex_count(args.vertices, args.beta)
    theory = PLRGTheory(params)
    rows = [[key, value] for key, value in theory.summary().items()]
    print(format_table(["quantity", "value"], rows))
    return 0


def _command_import(args: argparse.Namespace) -> int:
    graph, _mapping = import_edge_list(
        args.text_input, args.output, order=args.order, compact=args.compact
    )
    print(
        f"imported {args.text_input} -> {args.output}: "
        f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges ({args.order} order)"
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    edges = export_edge_list(args.input, args.text_output)
    print(f"exported {edges:,} edges to {args.text_output}")
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    try:
        if args.to_binary:
            header = adjacency_to_binary(args.input, args.output)
            # Verify the artifact end to end once, at birth: every later
            # open can then trust the header checksum + size check alone.
            MemmapAdjacencySource(args.output, verify=True).close()
            print(
                f"converted {args.input} -> {args.output}: "
                f"{header.num_vertices:,} vertices, {header.num_edges:,} edges, "
                f"digest {header.digest}"
            )
        else:
            header = binary_to_adjacency(args.input, args.output)
            print(
                f"converted {args.input} -> {args.output}: "
                f"{header.num_vertices:,} vertices, {header.num_edges:,} edges"
            )
    except (StorageError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _command_reduce(args: argparse.Namespace) -> int:
    reader = open_adjacency_source(args.input)
    ctx = ExecutionContext.from_args(args, reader)
    if args.pipeline is None:
        spec = PipelineSpec(name="reduce", stages=(StageSpec("reduce"),))
    else:
        # Compose reduce with the requested pipeline's stages: the engine
        # solves the kernel and lifts the solution back automatically.  A
        # pipeline that already starts with reduce is used as-is — the
        # kernel is irreducible, so a second reduce pass would only waste
        # a full sweep.
        tail = PIPELINES[args.pipeline]
        if tail.stages[0].stage == "reduce":
            spec = tail
        else:
            spec = PipelineSpec(
                name=f"reduce+{args.pipeline}",
                stages=(StageSpec("reduce"),) + tail.stages,
            )
    result = PipelineEngine(spec, max_rounds=args.max_rounds).run(ctx)
    reduce_stats = result.extras["stages"][0]["extras"]
    rows = [
        ["original vertices", reader.num_vertices],
        ["kernel vertices", int(reduce_stats["kernel_vertices"])],
        ["kernel edges", int(reduce_stats["kernel_edges"])],
        ["forced picks", int(reduce_stats["forced_vertices"])],
        ["folds", int(reduce_stats["folds"])],
        ["isolated-rule applications", int(reduce_stats["isolated"])],
        ["pendant-rule applications", int(reduce_stats["pendant"])],
        ["triangle-rule applications", int(reduce_stats["triangle"])],
    ]
    if args.pipeline is not None:
        rows.append(["solved independent set", result.size])
    print(format_table(["quantity", "value"], rows))
    reader.close()
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.real_vertices, spec.real_edges, spec.avg_degree, spec.disk_size]
        for spec in DATASETS.values()
    ]
    print(format_table(["dataset", "|V|", "|E|", "avg degree", "disk size"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mis`` console script."""

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "solve": _command_solve,
        "watch": _command_watch,
        "compare": _command_compare,
        "run": _command_run,
        "bound": _command_bound,
        "theory": _command_theory,
        "datasets": _command_datasets,
        "import": _command_import,
        "export": _command_export,
        "convert": _command_convert,
        "reduce": _command_reduce,
        "serve": _command_serve,
        "submit": _command_submit,
        "status": _command_status,
        "metrics": _command_metrics,
        "results": _command_results,
        "cancel": _command_cancel,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
