"""Incremental maintenance of an independent set under graph updates.

The paper's conclusion lists "incremental massive graphs with frequent
updates" as the main direction for future work.  This sub-package provides
a prototype of that direction: :class:`DynamicMISMaintainer` keeps a
maximal independent set valid across edge insertions, edge deletions and
vertex arrivals, repairing locally after each update and exposing a
``rebuild`` hook that re-runs the swap pipelines when the accumulated
drift warrants it.
"""

from repro.dynamic.maintainer import DynamicMISMaintainer, UpdateStats

__all__ = ["DynamicMISMaintainer", "UpdateStats"]
