"""Incremental maintenance of an independent set under graph updates.

The paper's conclusion lists "incremental massive graphs with frequent
updates" as the main direction for future work.  This sub-package provides
that direction: :class:`DynamicMISMaintainer` keeps a maximal
independent set valid across edge insertions/deletions, vertex arrivals
and vertex deletions, repairing locally after each update.  Batched
updates (``apply_updates``) dispatch through the kernel-backend registry
— scalar python reference or conflict-free numpy waves, bit-identical —
and the delta overlay compacts back into fresh CSR base arrays past
``compact_threshold``.  A ``rebuild`` hook re-runs the swap pipelines
when the accumulated drift warrants it, and
:class:`repro.pipeline.stream.StreamSession` turns the maintainer into a
checkpointed streaming session (``repro-mis watch``).
"""

from repro.dynamic.maintainer import DynamicMISMaintainer, UpdateStats

__all__ = ["DynamicMISMaintainer", "UpdateStats"]
