"""Maintain a maximal independent set under edge and vertex updates.

The maintainer keeps the whole adjacency in memory (this is a prototype of
the paper's future-work direction, not a semi-external component) and
preserves two invariants after every update:

* **independence** — no edge has both endpoints selected;
* **maximality** — every unselected vertex has a selected neighbour.

The adjacency is stored as the immutable **CSR arrays** of the initial
graph plus a small per-vertex delta overlay (edges added or removed
since), and the per-vertex solver state lives in flat arrays — a selected
flag, the current degree, and a *tightness* counter (the number of
selected neighbours).  Tightness makes every invariant decision O(1):
a vertex can join the set exactly when its tightness is zero, which
replaces the seed's per-update set intersections.  With NumPy available
the arrays are ndarrays and the initial tightness, invariant checks and
rebuilds run as vectorized bincounts over the CSR slots; without it the
same flat-array logic runs on plain lists.

Update rules:

``insert_edge(u, v)``
    If both endpoints are selected, the one with the larger current degree
    is evicted and the neighbourhood of the evicted vertex is re-saturated
    (any neighbour left without a selected neighbour is added back
    greedily, smallest degree first).
``delete_edge(u, v)``
    If the deletion leaves an unselected endpoint with no selected
    neighbour, it is added.
``add_vertex()`` / ``delete_vertex(v)``
    A fresh isolated vertex always joins the set; deleting a vertex
    detaches its incident edges and re-saturates its neighbourhood.
``apply_updates(insertions, deletions)``
    Bulk form for update streams: dedupes each batch, applies every
    insertion, then every deletion, each with exactly the per-edge
    semantics above.  The per-update logic is dispatched through the
    kernel-backend registry: the ``python`` backend is the scalar
    reference loop, the ``numpy`` backend commits conflict-free spans of
    the batch as vectorized waves with bit-identical results.  Every
    selection change is appended to :attr:`journal` as ``("select" |
    "unselect", vertex)``.
``compact()``
    Fold the delta overlay back into fresh CSR base arrays once it grows
    past ``compact_threshold`` (checked after every ``apply_updates``
    batch); the selected set and all counters are untouched.
``rebuild(pipeline=...)``
    Recompute the set from scratch with any of the library pipelines —
    the counterpart of the paper's periodic swap passes — and reset the
    drift counters.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import asdict, dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.kernels import WaveTelemetry, observe_pass, resolve_maintainer_backend
from repro.core.kernels.python_backend import normalize_updates
from repro.core.solver import solve_mis
from repro.errors import DuplicateEdgeError, GraphError, SolverError, VertexError
from repro.graphs.graph import Graph

try:  # pragma: no cover - exercised implicitly on every import
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["UpdateStats", "DynamicMISMaintainer"]


@dataclass
class UpdateStats:
    """Counters describing the update stream processed so far."""

    edges_inserted: int = 0
    edges_deleted: int = 0
    vertices_added: int = 0
    vertices_deleted: int = 0
    evictions: int = 0
    additions: int = 0
    rebuilds: int = 0
    compactions: int = 0


class DynamicMISMaintainer:
    """Keep a maximal independent set valid across graph updates."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        initial: Optional[Iterable[int]] = None,
        pipeline: str = "two_k_swap",
        backend: Optional[str] = None,
        compact_threshold: Optional[int] = None,
        journal_limit: Optional[int] = None,
    ) -> None:
        if journal_limit is not None and journal_limit < 0:
            raise SolverError("journal_limit must be non-negative")
        self._pipeline = pipeline
        self._backend = backend
        self.compact_threshold = compact_threshold
        self.journal_limit = journal_limit
        self.stats = UpdateStats()
        #: How the wave scheduler spent this maintainer's stream; written
        #: only by the numpy backend, zeros under the scalar reference.
        self.wave = WaveTelemetry()
        #: Backend scratch that survives between ``apply_updates`` calls
        #: (e.g. the adaptive wave-window sizes).
        self._wave_state: Dict[str, int] = {}
        #: Ordered record of every selection change as ("select" |
        #: "unselect", vertex); parity tests compare it across backends.
        #: With ``journal_limit`` set it behaves as a ring: only the most
        #: recent ``journal_limit`` entries are retained (trimmed at
        #: update boundaries, so a long-lived session stays bounded).
        self.journal: List[Tuple[str, int]] = []
        # Immutable CSR base (the initial graph) + per-vertex delta overlay.
        self._base_offsets = None
        self._base_targets = None
        self._base_n = 0
        self._added: Dict[int, Set[int]] = {}
        self._removed: Dict[int, Set[int]] = {}
        # Flat per-vertex state, grown on demand.
        self._capacity = 0
        self._present = self._new_bool(0)
        self._selected = self._new_bool(0)
        self._tight = self._new_int(0)
        self._degree = self._new_int(0)
        #: Conservative per-vertex flag: True once the vertex has (ever
        #: had) a delta-overlay entry, so vectorized adjacency gathers
        #: can skip the per-vertex dict probes on clean vertices.
        self._overlay_dirty = self._new_bool(0)
        self._num_present = 0
        self._num_edges = 0
        self._max_id = -1

        if graph is not None:
            self._base_offsets, self._base_targets = graph.csr_arrays()
            self._base_n = graph.num_vertices
            self._grow(self._base_n)
            self._max_id = self._base_n - 1
            self._num_present = self._base_n
            self._num_edges = graph.num_edges
            if _np is not None and isinstance(self._base_offsets, _np.ndarray):
                self._present[: self._base_n] = True
                self._degree[: self._base_n] = _np.diff(self._base_offsets)
            else:
                for v in range(self._base_n):
                    self._present[v] = True
                    self._degree[v] = (
                        self._base_offsets[v + 1] - self._base_offsets[v]
                    )
            if initial is None:
                initial = solve_mis(graph, pipeline=pipeline).independent_set
            for v in initial:
                if not (0 <= v < self._base_n):
                    raise SolverError(
                        f"initial vertex {v} is not in the graph"
                    )
                self._selected[v] = True
            self._recompute_tightness()
            for v in self._selected_ids():
                if self._tight[v]:
                    raise SolverError("the initial set is not independent")
            self._saturate(range(self._base_n))
            # The journal records the *update stream*; construction-time
            # saturation is part of the initial state, not an update.
            self.journal.clear()

    # ------------------------------------------------------------------
    # Flat-array plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _new_bool(size: int):
        if _np is not None:
            return _np.zeros(size, dtype=bool)
        return [False] * size

    @staticmethod
    def _new_int(size: int):
        if _np is not None:
            return _np.zeros(size, dtype=_np.int64)
        return [0] * size

    def _grow(self, needed: int) -> None:
        """Ensure the state arrays cover vertex ids ``0 .. needed - 1``."""

        if needed <= self._capacity:
            return
        new_capacity = max(needed, 2 * self._capacity, 16)
        if _np is not None and isinstance(self._present, _np.ndarray):
            for name in (
                "_present", "_selected", "_tight", "_degree", "_overlay_dirty"
            ):
                old = getattr(self, name)
                fresh = _np.zeros(new_capacity, dtype=old.dtype)
                fresh[: old.size] = old
                setattr(self, name, fresh)
        else:
            pad = new_capacity - self._capacity
            self._present.extend([False] * pad)
            self._selected.extend([False] * pad)
            self._tight.extend([0] * pad)
            self._degree.extend([0] * pad)
            self._overlay_dirty.extend([False] * pad)
        self._capacity = new_capacity

    def _selected_ids(self) -> List[int]:
        if _np is not None and isinstance(self._selected, _np.ndarray):
            return _np.flatnonzero(self._selected).tolist()
        return [v for v in range(self._capacity) if self._selected[v]]

    def _present_ids(self) -> List[int]:
        if _np is not None and isinstance(self._present, _np.ndarray):
            return _np.flatnonzero(self._present).tolist()
        return [v for v in range(self._capacity) if self._present[v]]

    # ------------------------------------------------------------------
    # Adjacency (CSR base + deltas)
    # ------------------------------------------------------------------
    def _base_slice(self, vertex: int) -> List[int]:
        if not (0 <= vertex < self._base_n):
            return []
        chunk = self._base_targets[
            self._base_offsets[vertex] : self._base_offsets[vertex + 1]
        ]
        return chunk.tolist() if hasattr(chunk, "tolist") else list(chunk)

    def _neighbors(self, vertex: int) -> List[int]:
        """Current neighbours of ``vertex`` (base minus removed plus added)."""

        removed = self._removed.get(vertex)
        neighbors = (
            [u for u in self._base_slice(vertex) if u not in removed]
            if removed
            else self._base_slice(vertex)
        )
        added = self._added.get(vertex)
        if added:
            neighbors.extend(added)
        return neighbors

    def _base_has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < self._base_n and 0 <= v < self._base_n):
            return False
        start = self._base_offsets[u]
        end = self._base_offsets[u + 1]
        slot = bisect_left(self._base_targets, v, int(start), int(end))
        return slot < end and self._base_targets[slot] == v

    def _has_edge(self, u: int, v: int) -> bool:
        added = self._added.get(u)
        if added and v in added:
            return True
        if self._base_has_edge(u, v):
            removed = self._removed.get(u)
            return not (removed and v in removed)
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the maintained graph."""

        return self._num_present

    @property
    def num_edges(self) -> int:
        """Number of edges currently in the maintained graph."""

        return self._num_edges

    @property
    def independent_set(self) -> FrozenSet[int]:
        """The currently maintained independent set."""

        return frozenset(self._selected_ids())

    @property
    def size(self) -> int:
        """Size of the maintained independent set."""

        if _np is not None and isinstance(self._selected, _np.ndarray):
            return int(self._selected.sum())
        return sum(1 for v in range(self._capacity) if self._selected[v])

    def to_graph(self) -> Graph:
        """Materialise the current graph as an immutable :class:`Graph`."""

        num_vertices = self._max_id + 1
        added_pairs = [
            (u, v)
            for u, neighbors in self._added.items()
            for v in neighbors
            if u < v
        ]
        if (
            _np is not None
            and self._base_n
            and isinstance(self._base_targets, _np.ndarray)
        ):
            degrees = _np.diff(self._base_offsets)
            sources = _np.repeat(
                _np.arange(self._base_n, dtype=_np.int64), degrees
            )
            forward = sources < self._base_targets
            eu, ev = sources[forward], self._base_targets[forward]
            if self._removed:
                removed_keys = {
                    u * num_vertices + v
                    for u, neighbors in self._removed.items()
                    for v in neighbors
                    if u < v
                }
                if removed_keys:
                    keys = eu * num_vertices + ev
                    keep = ~_np.isin(
                        keys, _np.fromiter(removed_keys, dtype=_np.int64)
                    )
                    eu, ev = eu[keep], ev[keep]
            edges = _np.column_stack((eu, ev))
            if added_pairs:
                edges = _np.concatenate(
                    (edges, _np.asarray(added_pairs, dtype=_np.int64))
                )
            return Graph(num_vertices, edges)
        edges: List[Tuple[int, int]] = []
        for u in range(self._base_n):
            removed = self._removed.get(u)
            for v in self._base_slice(u):
                if u < v and not (removed and v in removed):
                    edges.append((u, v))
        edges.extend(added_pairs)
        return Graph(num_vertices, edges)

    def _recompute_tightness(self) -> None:
        """Rebuild the tightness array from the selection flags.

        The CSR base contributes one vectorized masked bincount; the
        (small) delta overlay is patched in scalar.
        """

        if _np is not None and isinstance(self._tight, _np.ndarray):
            self._tight[:] = 0
            if self._base_n and isinstance(self._base_targets, _np.ndarray):
                degrees = _np.diff(self._base_offsets)
                sources = _np.repeat(
                    _np.arange(self._base_n, dtype=_np.int64), degrees
                )
                mask = self._selected[self._base_targets]
                self._tight[: self._base_n] += _np.bincount(
                    sources[mask], minlength=self._base_n
                )
            for u, neighbors in self._removed.items():
                for v in neighbors:
                    if self._selected[v]:
                        self._tight[u] -= 1
            for u, neighbors in self._added.items():
                for v in neighbors:
                    if self._selected[v]:
                        self._tight[u] += 1
            return
        for v in range(self._capacity):
            self._tight[v] = 0
        for v in self._selected_ids():
            for u in self._neighbors(v):
                self._tight[u] += 1

    def check_invariants(self) -> None:
        """Raise :class:`SolverError` if independence or maximality is violated.

        The check recomputes the tightness counters from scratch (it does
        not trust the incrementally maintained array), so it also catches
        maintainer bugs.
        """

        maintained = (
            self._tight.copy()
            if _np is not None and isinstance(self._tight, _np.ndarray)
            else list(self._tight)
        )
        self._recompute_tightness()
        try:
            for u in self._selected_ids():
                if not self._present[u]:
                    raise SolverError(f"selected vertex {u} is not in the graph")
                if self._tight[u]:
                    conflict = next(
                        w for w in self._neighbors(u) if self._selected[w]
                    )
                    raise SolverError(
                        f"selected vertices {u} and {conflict} are adjacent"
                    )
            for v in self._present_ids():
                if not self._selected[v] and not self._tight[v]:
                    raise SolverError(
                        f"vertex {v} is uncovered: the set is not maximal"
                    )
            if _np is not None and isinstance(maintained, _np.ndarray):
                drift = bool((maintained != self._tight).any())
            else:
                drift = maintained != list(self._tight)
            if drift:
                raise SolverError("the maintained tightness counters drifted")
        finally:
            if _np is not None and isinstance(maintained, _np.ndarray):
                self._tight[:] = maintained
            else:
                self._tight = maintained

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _create_vertex(self, vertex: int) -> None:
        self._grow(vertex + 1)
        self._present[vertex] = True
        self._num_present += 1
        if vertex > self._max_id:
            self._max_id = vertex

    def _select(self, vertex: int) -> None:
        self._selected[vertex] = True
        for u in self._neighbors(vertex):
            self._tight[u] += 1
        self.stats.additions += 1
        self.journal.append(("select", vertex))

    def _unselect(self, vertex: int) -> None:
        self._selected[vertex] = False
        for u in self._neighbors(vertex):
            self._tight[u] -= 1
        self.journal.append(("unselect", vertex))

    def add_vertex(self) -> int:
        """Add an isolated vertex; it immediately joins the independent set."""

        vertex = self._max_id + 1
        self._create_vertex(vertex)
        self._select(vertex)
        self.stats.vertices_added += 1
        self._trim_journal()
        return vertex

    def insert_edge(self, u: int, v: int, *, exist_ok: bool = True) -> None:
        """Insert the undirected edge ``{u, v}``, creating vertices as needed.

        Inserting an edge that already exists is a no-op by default; with
        ``exist_ok=False`` it raises :class:`DuplicateEdgeError` instead.
        """

        if u == v:
            raise GraphError("self loops are not allowed")
        for vertex in (u, v):
            if vertex < 0:
                raise GraphError("vertex ids must be non-negative")
            if not (vertex < self._capacity and self._present[vertex]):
                self._create_vertex(vertex)
            # Vertices with no selected neighbour join the set before the
            # edge goes in (covers brand-new vertices in particular).
            if not self._selected[vertex] and not self._tight[vertex]:
                self._select(vertex)
        if self._has_edge(u, v):
            if exist_ok:
                self._trim_journal()
                return
            raise DuplicateEdgeError(u, v)
        self._apply_edge_insert(u, v)
        self.stats.edges_inserted += 1

        if self._selected[u] and self._selected[v]:
            evicted = u if self._degree[u] >= self._degree[v] else v
            self._unselect(evicted)
            self.stats.evictions += 1
            self._saturate(self._neighbors(evicted) + [evicted])
        self._trim_journal()

    def _apply_edge_insert(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            removed = self._removed.get(a)
            if removed and b in removed:
                removed.discard(b)
            else:
                self._added.setdefault(a, set()).add(b)
            self._overlay_dirty[a] = True
            self._degree[a] += 1
            if self._selected[b]:
                self._tight[a] += 1
        self._num_edges += 1

    def delete_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}`` (a no-op if it does not exist)."""

        if u == v or min(u, v) < 0 or max(u, v) >= self._capacity:
            return
        if not (self._present[u] and self._present[v]):
            return
        if not self._has_edge(u, v):
            return
        for a, b in ((u, v), (v, u)):
            added = self._added.get(a)
            if added and b in added:
                added.discard(b)
            else:
                self._removed.setdefault(a, set()).add(b)
            self._overlay_dirty[a] = True
            self._degree[a] -= 1
            if self._selected[b]:
                self._tight[a] -= 1
        self._num_edges -= 1
        self.stats.edges_deleted += 1
        self._saturate((u, v))
        self._trim_journal()

    def delete_vertex(self, vertex: int) -> None:
        """Delete ``vertex`` and its incident edges from the graph.

        The vertex leaves the set if it was selected, and its former
        neighbourhood is re-saturated (any neighbour left without a
        selected neighbour is added back greedily, smallest degree
        first).  Raises :class:`VertexError` for unknown vertices.
        """

        if vertex < 0:
            raise GraphError("vertex ids must be non-negative")
        if vertex >= self._capacity or not self._present[vertex]:
            raise VertexError(vertex, self._max_id + 1)
        neighbors = self._neighbors(vertex)
        if self._selected[vertex]:
            self._unselect(vertex)
        for u in neighbors:
            for a, b in ((u, vertex), (vertex, u)):
                added = self._added.get(a)
                if added and b in added:
                    added.discard(b)
                else:
                    self._removed.setdefault(a, set()).add(b)
                self._overlay_dirty[a] = True
            self._degree[u] -= 1
        self._degree[vertex] = 0
        self._tight[vertex] = 0
        self._present[vertex] = False
        self._num_present -= 1
        self._num_edges -= len(neighbors)
        self.stats.edges_deleted += len(neighbors)
        self.stats.vertices_deleted += 1
        self._saturate(neighbors)
        self._trim_journal()

    @staticmethod
    def _normalize_updates(
        updates: Iterable[Tuple[int, int]], *, strict: bool
    ) -> List[Tuple[int, int]]:
        """Coerce, validate and dedupe one side of an update batch.

        Duplicates of the same undirected edge keep only the first
        occurrence in its original orientation (orientation feeds the
        eviction tie-break).  ``strict`` mirrors the per-edge methods:
        insertions raise on malformed pairs, deletions drop them as
        no-ops.
        """

        return normalize_updates(updates, strict=strict)

    def apply_updates(
        self,
        insertions: Iterable[Tuple[int, int]] = (),
        deletions: Iterable[Tuple[int, int]] = (),
        *,
        exist_ok: bool = True,
    ) -> UpdateStats:
        """Apply a bulk update stream: every insertion, then every deletion.

        Accepts any iterable of ``(u, v)`` pairs — including ``(m, 2)``
        integer ndarrays.  Each batch side is deduplicated first (repeats
        of the same undirected edge keep the first occurrence only), then
        handed to the kernel backend's ``dynamic_apply_pass``, which
        applies each update with exactly the per-edge semantics of
        :meth:`insert_edge` / :meth:`delete_edge`.  With
        ``exist_ok=False`` an insertion that duplicates an existing edge
        raises :class:`DuplicateEdgeError` before anything is applied,
        matching :meth:`insert_edge`'s single-edge strict mode.  Returns
        the (cumulative) :class:`UpdateStats`.
        """

        backend = resolve_maintainer_backend(self._backend, self)
        insertions = backend.normalize_updates_pass(insertions, strict=True)
        deletions = backend.normalize_updates_pass(deletions, strict=False)
        if not exist_ok:
            # Deletions run after insertions and duplicates are gone, so
            # checking against the pre-batch graph is exactly the moment
            # insert_edge would have seen each edge.
            for u, v in insertions:
                if self._has_edge(u, v):
                    raise DuplicateEdgeError(u, v)
        backend.dynamic_apply_pass(self, insertions, deletions)
        observe_pass(
            "dynamic_apply",
            backend.name,
            insertions=len(insertions),
            deletions=len(deletions),
        )
        self._trim_journal()
        self._maybe_compact()
        return self.stats

    def rebuild(self, pipeline: Optional[str] = None) -> None:
        """Recompute the set from scratch with a full pipeline run."""

        graph = self.to_graph()
        solution = solve_mis(graph, pipeline=pipeline or self._pipeline).independent_set
        # to_graph() may contain placeholder ids for vertices that were never
        # created; keep only real vertices and re-saturate the rest.
        if _np is not None and isinstance(self._selected, _np.ndarray):
            self._selected[:] = False
        else:
            for v in range(self._capacity):
                self._selected[v] = False
        for v in solution:
            if v < self._capacity and self._present[v]:
                self._selected[v] = True
        self._recompute_tightness()
        self._saturate(self._present_ids())
        self.stats.rebuilds += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @property
    def overlay_size(self) -> int:
        """Number of directed entries in the delta overlay."""

        return sum(len(s) for s in self._added.values()) + sum(
            len(s) for s in self._removed.values()
        )

    def compact(self) -> None:
        """Fold the delta overlay back into fresh CSR base arrays.

        Compaction only rewrites the adjacency representation: the
        selected set, tightness, degree and presence arrays — and hence
        every future update decision — are untouched.  Afterwards the
        overlay is empty and per-vertex neighbour scans are pure CSR
        slices again.
        """

        graph = self.to_graph()
        self._base_offsets, self._base_targets = graph.csr_arrays()
        self._base_n = graph.num_vertices
        self._added.clear()
        self._removed.clear()
        if _np is not None and isinstance(self._overlay_dirty, _np.ndarray):
            self._overlay_dirty[:] = False
        else:
            for v in range(self._capacity):
                self._overlay_dirty[v] = False
        self.stats.compactions += 1

    def _maybe_compact(self) -> None:
        if (
            self.compact_threshold is not None
            and self.overlay_size >= self.compact_threshold
        ):
            self.compact()

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------
    def base_arrays(self) -> Tuple[Any, Any]:
        """The immutable CSR base ``(offsets, targets)`` arrays."""

        if self._base_offsets is None:
            offsets, targets = Graph(0, []).csr_arrays()
            return offsets, targets
        return self._base_offsets, self._base_targets

    def state_payload(self) -> Dict[str, Any]:
        """JSON-serialisable maintainer state (without the CSR base).

        Together with :meth:`base_arrays` this captures the full state:
        :meth:`from_state` rebuilds an identical maintainer — degrees and
        tightness are recomputed deterministically from the adjacency and
        selection, so only flags, overlays and counters are stored.
        """

        absent = [
            v for v in range(self._max_id + 1)
            if not (v < self._capacity and self._present[v])
        ]
        return {
            "pipeline": self._pipeline,
            "max_id": self._max_id,
            "num_present": self._num_present,
            "num_edges": self._num_edges,
            "selected": self._selected_ids(),
            "absent": absent,
            "added": sorted(
                (u, v)
                for u, neighbors in self._added.items()
                for v in neighbors
                if u < v
            ),
            "removed": sorted(
                (u, v)
                for u, neighbors in self._removed.items()
                for v in neighbors
                if u < v
            ),
            "stats": asdict(self.stats),
        }

    @classmethod
    def from_state(
        cls,
        payload: Dict[str, Any],
        base_offsets,
        base_targets,
        *,
        backend: Optional[str] = None,
        compact_threshold: Optional[int] = None,
        journal_limit: Optional[int] = None,
    ) -> "DynamicMISMaintainer":
        """Rebuild a maintainer from :meth:`state_payload` + CSR base."""

        maintainer = cls(
            pipeline=payload["pipeline"],
            backend=backend,
            compact_threshold=compact_threshold,
            journal_limit=journal_limit,
        )
        maintainer._base_offsets = base_offsets
        maintainer._base_targets = base_targets
        maintainer._base_n = len(base_offsets) - 1
        max_id = int(payload["max_id"])
        maintainer._max_id = max_id
        maintainer._num_present = int(payload["num_present"])
        maintainer._num_edges = int(payload["num_edges"])
        maintainer._grow(max_id + 1)
        if _np is not None and isinstance(maintainer._present, _np.ndarray):
            maintainer._present[: max_id + 1] = True
            base_n = maintainer._base_n
            if base_n and isinstance(base_offsets, _np.ndarray):
                maintainer._degree[:base_n] = _np.diff(base_offsets)
        else:
            for v in range(max_id + 1):
                maintainer._present[v] = True
            for v in range(maintainer._base_n):
                maintainer._degree[v] = base_offsets[v + 1] - base_offsets[v]
        for v in payload["absent"]:
            maintainer._present[v] = False
        for u, v in payload["added"]:
            maintainer._added.setdefault(u, set()).add(v)
            maintainer._added.setdefault(v, set()).add(u)
            maintainer._overlay_dirty[u] = True
            maintainer._overlay_dirty[v] = True
        for u, v in payload["removed"]:
            maintainer._removed.setdefault(u, set()).add(v)
            maintainer._removed.setdefault(v, set()).add(u)
            maintainer._overlay_dirty[u] = True
            maintainer._overlay_dirty[v] = True
        for u, neighbors in maintainer._added.items():
            maintainer._degree[u] += len(neighbors)
        for u, neighbors in maintainer._removed.items():
            maintainer._degree[u] -= len(neighbors)
        for v in payload["selected"]:
            maintainer._selected[v] = True
        maintainer._recompute_tightness()
        maintainer.stats = UpdateStats(**payload["stats"])
        return maintainer

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _trim_journal(self) -> None:
        """Drop all but the newest ``journal_limit`` entries (ring mode)."""

        limit = self.journal_limit
        if limit is not None and len(self.journal) > limit:
            del self.journal[: len(self.journal) - limit]

    # The three hooks below are the bulk counterparts of ``_select`` /
    # ``_unselect`` used by the wave scheduler: a committed sub-wave
    # journals, flips selection flags and scatters tightness for many
    # vertices in one call each instead of one python call per vertex.
    def _journal_extend(self, entries: Iterable[Tuple[str, int]]) -> None:
        self.journal.extend(entries)

    def _store_selected(self, vertices, value: bool) -> None:
        if _np is not None and isinstance(self._selected, _np.ndarray):
            self._selected[vertices] = value
        else:
            for v in vertices:
                self._selected[v] = value

    def _scatter_tight(self, vertices, deltas) -> None:
        if _np is not None and isinstance(self._tight, _np.ndarray):
            _np.add.at(self._tight, vertices, deltas)
        else:
            scalar = not hasattr(deltas, "__len__")
            for i, v in enumerate(vertices):
                self._tight[v] += deltas if scalar else deltas[i]

    def _saturate(self, candidates: Iterable[int]) -> None:
        """Greedily add any candidate left without a selected neighbour."""

        pool = sorted(
            {
                v
                for v in candidates
                if 0 <= v < self._capacity and self._present[v]
            },
            key=lambda v: (self._degree[v], v),
        )
        for vertex in pool:
            if self._selected[vertex]:
                continue
            if not self._tight[vertex]:
                self._select(vertex)
