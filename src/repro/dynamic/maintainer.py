"""Maintain a maximal independent set under edge and vertex updates.

The maintainer keeps the whole adjacency in memory (this is a prototype of
the paper's future-work direction, not a semi-external component) and
preserves two invariants after every update:

* **independence** — no edge has both endpoints selected;
* **maximality** — every unselected vertex has a selected neighbour.

Update rules:

``insert_edge(u, v)``
    If both endpoints are selected, the one with the larger current degree
    is evicted and the neighbourhood of the evicted vertex is re-saturated
    (any neighbour left without a selected neighbour is added back
    greedily, smallest degree first).
``delete_edge(u, v)``
    If the deletion leaves an unselected endpoint with no selected
    neighbour, it is added.
``add_vertex()``
    A fresh isolated vertex is always added to the set.
``rebuild(pipeline=...)``
    Recompute the set from scratch with any of the library pipelines —
    the counterpart of the paper's periodic swap passes — and reset the
    drift counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.core.solver import solve_mis
from repro.errors import GraphError, SolverError
from repro.graphs.graph import Graph
from repro.validation.checks import is_independent_set, uncovered_vertices

__all__ = ["UpdateStats", "DynamicMISMaintainer"]


@dataclass
class UpdateStats:
    """Counters describing the update stream processed so far."""

    edges_inserted: int = 0
    edges_deleted: int = 0
    vertices_added: int = 0
    evictions: int = 0
    additions: int = 0
    rebuilds: int = 0


class DynamicMISMaintainer:
    """Keep a maximal independent set valid across graph updates."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        initial: Optional[Iterable[int]] = None,
        pipeline: str = "two_k_swap",
    ) -> None:
        self._adjacency: Dict[int, Set[int]] = {}
        self._selected: Set[int] = set()
        self._pipeline = pipeline
        self.stats = UpdateStats()
        if graph is not None:
            for vertex in graph.vertices():
                self._adjacency[vertex] = set(graph.neighbors(vertex))
            if initial is None:
                initial = solve_mis(graph, pipeline=pipeline).independent_set
            self._selected = set(initial)
            if not is_independent_set(graph, self._selected):
                raise SolverError("the initial set is not independent")
            self._saturate(self._adjacency.keys())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the maintained graph."""

        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges currently in the maintained graph."""

        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    @property
    def independent_set(self) -> FrozenSet[int]:
        """The currently maintained independent set."""

        return frozenset(self._selected)

    @property
    def size(self) -> int:
        """Size of the maintained independent set."""

        return len(self._selected)

    def to_graph(self) -> Graph:
        """Materialise the current graph as an immutable :class:`Graph`."""

        num_vertices = max(self._adjacency, default=-1) + 1
        edges = [
            (u, v)
            for u, neighbors in self._adjacency.items()
            for v in neighbors
            if u < v
        ]
        return Graph(num_vertices, edges)

    def check_invariants(self) -> None:
        """Raise :class:`SolverError` if independence or maximality is violated."""

        for u in self._selected:
            if self._adjacency.get(u) is None:
                raise SolverError(f"selected vertex {u} is not in the graph")
            conflict = self._adjacency[u] & self._selected
            if conflict:
                raise SolverError(f"selected vertices {u} and {conflict.pop()} are adjacent")
        for vertex, neighbors in self._adjacency.items():
            if vertex not in self._selected and not (neighbors & self._selected):
                raise SolverError(f"vertex {vertex} is uncovered: the set is not maximal")

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Add an isolated vertex; it immediately joins the independent set."""

        vertex = max(self._adjacency, default=-1) + 1
        self._adjacency[vertex] = set()
        self._selected.add(vertex)
        self.stats.vertices_added += 1
        self.stats.additions += 1
        return vertex

    def insert_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``{u, v}``, creating vertices as needed."""

        if u == v:
            raise GraphError("self loops are not allowed")
        for vertex in (u, v):
            if vertex < 0:
                raise GraphError("vertex ids must be non-negative")
            self._adjacency.setdefault(vertex, set())
            # Brand-new vertices join the set if nothing blocks them yet.
            if vertex not in self._selected and not (
                self._adjacency[vertex] & self._selected
            ):
                self._selected.add(vertex)
                self.stats.additions += 1
        if v in self._adjacency[u]:
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self.stats.edges_inserted += 1

        if u in self._selected and v in self._selected:
            evicted = u if len(self._adjacency[u]) >= len(self._adjacency[v]) else v
            self._selected.discard(evicted)
            self.stats.evictions += 1
            self._saturate(self._adjacency[evicted] | {evicted})

    def delete_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}`` (a no-op if it does not exist)."""

        if v not in self._adjacency.get(u, set()):
            return
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self.stats.edges_deleted += 1
        self._saturate((u, v))

    def rebuild(self, pipeline: Optional[str] = None) -> None:
        """Recompute the set from scratch with a full pipeline run."""

        graph = self.to_graph()
        solution = solve_mis(graph, pipeline=pipeline or self._pipeline).independent_set
        # to_graph() may contain placeholder ids for vertices that were never
        # created; keep only real vertices and re-saturate the rest.
        self._selected = {v for v in solution if v in self._adjacency}
        self._saturate(self._adjacency.keys())
        self.stats.rebuilds += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _saturate(self, candidates: Iterable[int]) -> None:
        """Greedily add any candidate left without a selected neighbour."""

        for vertex in sorted(
            (v for v in candidates if v in self._adjacency),
            key=lambda v: (len(self._adjacency[v]), v),
        ):
            if vertex in self._selected:
                continue
            if not (self._adjacency[vertex] & self._selected):
                self._selected.add(vertex)
                self.stats.additions += 1
