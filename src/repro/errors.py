"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError`, so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class VertexError(GraphError):
    """Raised when a vertex id is out of range or otherwise unknown."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex!r} is not a valid vertex id for a graph with "
            f"{num_vertices} vertices (expected 0 <= v < {num_vertices})"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class DuplicateEdgeError(GraphError):
    """Raised when an edge insert targets an edge that already exists.

    Only raised in strict mode (``exist_ok=False``) — the default update
    semantics treat a duplicate insert as a no-op.  Carries the edge so
    stream processors can report the offending update.
    """

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge {{{u}, {v}}} already exists in the graph")
        self.edge = (u, v)


class StorageError(ReproError):
    """Raised when the semi-external storage layer encounters bad data."""


class FormatError(StorageError):
    """Raised when an adjacency file does not follow the binary format."""


class BinaryFormatError(FormatError):
    """Raised when a binary CSR artifact does not follow its format."""


class BinaryCorruptError(BinaryFormatError):
    """Raised when a binary CSR artifact is truncated or fails a checksum.

    A corrupt artifact is never served: the open aborts before any solver
    sees a single record.
    """


class BinaryVersionError(BinaryFormatError):
    """Raised when a binary CSR artifact has an incompatible format version."""

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"binary CSR format version {found} is not supported by this build "
            f"(supported version: {supported}); re-run 'repro-mis convert' to "
            f"regenerate the artifact"
        )
        self.found = found
        self.supported = supported


class MemoryBudgetError(StorageError):
    """Raised when an operation would exceed the configured memory budget."""

    def __init__(self, required: int, budget: int, what: str = "operation") -> None:
        super().__init__(
            f"{what} requires {required} bytes of main memory but the "
            f"semi-external budget is only {budget} bytes"
        )
        self.required = required
        self.budget = budget


class CheckpointError(StorageError):
    """Raised when a checkpoint file cannot be written, read or applied."""


class CheckpointCorruptError(CheckpointError):
    """Raised when a checkpoint file is truncated or fails its checksum.

    A corrupt checkpoint is never partially applied: the resume aborts
    before any solver state is restored.
    """


class CheckpointVersionError(CheckpointError):
    """Raised when a checkpoint was written by an incompatible format version."""

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"checkpoint format version {found} is not supported by this build "
            f"(supported version: {supported}); re-run without --resume to start over"
        )
        self.found = found
        self.supported = supported


class SolverError(ReproError):
    """Raised when a solver is configured or driven incorrectly."""


class PipelineSpecError(SolverError):
    """Raised when a declarative pipeline/run spec is malformed."""


class PipelineInterrupted(SolverError):
    """Raised by the pipeline engine's deterministic interrupt knob.

    ``repro-mis solve --interrupt-after N`` (and the crash-resume tests)
    use this to simulate a killed run right after the N-th checkpoint
    write; the checkpoint file on disk is complete and resumable.
    """


class StreamError(SolverError):
    """Raised when a stream session is misconfigured or cannot resume.

    Covers malformed update files, checkpoint pins that do not match the
    resuming session (different graph, update stream or batch size), and
    stream checkpoints from an incompatible stream-format version.
    """


class InvalidIndependentSetError(SolverError):
    """Raised when a set of vertices claimed to be independent is not.

    Carries the offending edge so that tests and callers can produce a
    useful diagnostic.
    """

    def __init__(self, u: int, v: int) -> None:
        super().__init__(
            f"vertices {u} and {v} are adjacent, so the set is not independent"
        )
        self.edge = (u, v)


class ServiceError(ReproError):
    """Raised when the solver service is misused or its store is invalid."""


class JobNotFoundError(ServiceError):
    """Raised when a job id does not exist in the service's job store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id!r} does not exist in this service directory")
        self.job_id = job_id


class JobStateError(ServiceError):
    """Raised on an invalid job state transition (e.g. cancelling a done job)."""

    def __init__(self, job_id: str, state: str, action: str) -> None:
        super().__init__(f"cannot {action} job {job_id!r} in state {state!r}")
        self.job_id = job_id
        self.state = state
        self.action = action


class AnalysisError(ReproError):
    """Raised when theoretical-model parameters are out of their valid range."""


class DatasetError(ReproError):
    """Raised when a named dataset stand-in is unknown or cannot be built."""
