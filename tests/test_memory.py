"""Unit tests for the semi-external memory model and budget guard."""

from __future__ import annotations

import pytest

from repro.errors import MemoryBudgetError
from repro.storage.memory import MemoryBudget, MemoryModel


class TestMemoryModel:
    def test_greedy_is_one_bit_per_vertex(self):
        model = MemoryModel()
        assert model.greedy_bytes(8_000) == 1_000
        assert model.greedy_bytes(8_001) == 1_001

    def test_one_k_is_state_plus_one_word(self):
        model = MemoryModel()
        assert model.one_k_swap_bytes(1_000) == 1_000 * 5

    def test_two_k_adds_sc_vertices(self):
        model = MemoryModel()
        base = model.two_k_swap_bytes(1_000, max_sc_vertices=0)
        with_sc = model.two_k_swap_bytes(1_000, max_sc_vertices=130)
        assert with_sc - base == 130 * 4

    def test_dynamic_update_scales_with_edges(self):
        model = MemoryModel()
        sparse = model.dynamic_update_bytes(1_000, 2_000)
        dense = model.dynamic_update_bytes(1_000, 20_000)
        assert dense > sparse

    def test_local_search_scales_with_edges(self):
        model = MemoryModel()
        assert model.local_search_bytes(1_000, 5_000) == (
            (2 * 5_000 + 2 * 1_000) * 4 + 1_000
        )
        assert model.local_search_bytes(1_000, 50_000) > model.local_search_bytes(
            1_000, 5_000
        )

    def test_semi_external_is_far_below_in_memory_for_dense_graphs(self):
        model = MemoryModel()
        n, m = 100_000, 5_000_000
        assert model.two_k_swap_bytes(n, n // 8) < model.dynamic_update_bytes(n, m) / 10

    def test_algorithm_dispatch(self):
        model = MemoryModel()
        assert model.algorithm_bytes("greedy", 800) == model.greedy_bytes(800)
        assert model.algorithm_bytes("Two-K-Swap", 800) == model.two_k_swap_bytes(800)
        assert model.algorithm_bytes("stxxl", 800) == model.external_mis_bytes(64 * 1024)
        assert model.algorithm_bytes(
            "local_search", 800, num_edges=2_000
        ) == model.local_search_bytes(800, 2_000)
        with pytest.raises(ValueError):
            model.algorithm_bytes("unknown", 800)

    def test_report_covers_all_algorithms(self):
        report = MemoryModel().report(1_000, 5_000, max_sc_vertices=100)
        assert set(report) == {
            "dynamic_update",
            "external_mis",
            "greedy",
            "local_search",
            "one_k_swap",
            "two_k_swap",
        }
        assert report["greedy"] < report["one_k_swap"] < report["two_k_swap"]

    def test_paper_scale_facebook_memory_shape(self):
        """Table 6 shape: greedy ~ MBs, two-k ~ hundreds of MBs for 59M vertices."""

        model = MemoryModel()
        n = 59_220_000
        greedy_mb = model.greedy_bytes(n) / 2**20
        two_k_mb = model.two_k_swap_bytes(n, int(0.13 * n)) / 2**20
        assert 4 < greedy_mb < 10  # paper: 7.06MB
        assert 300 < two_k_mb < 800  # paper: 468.9MB


class TestMemoryBudget:
    def test_charge_within_budget(self):
        budget = MemoryBudget(1_000)
        budget.charge("state", 400)
        budget.charge("isn", 500)
        assert budget.used_bytes == 900
        assert budget.remaining_bytes == 100

    def test_charge_is_replaced_per_label(self):
        budget = MemoryBudget(1_000)
        budget.charge("sc", 400)
        budget.charge("sc", 600)
        assert budget.used_bytes == 600

    def test_exceeding_budget_raises(self):
        budget = MemoryBudget(1_000)
        budget.charge("state", 800)
        with pytest.raises(MemoryBudgetError):
            budget.charge("isn", 300)

    def test_release_frees_space(self):
        budget = MemoryBudget(1_000)
        budget.charge("sc", 900)
        budget.release("sc")
        budget.charge("other", 900)
        assert budget.charges() == {"other": 900}

    def test_negative_charge_rejected(self):
        budget = MemoryBudget(100)
        with pytest.raises(MemoryBudgetError):
            budget.charge("x", -1)

    def test_zero_budget_rejected(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(0)

    def test_semi_external_constructor(self):
        budget = MemoryBudget.semi_external(1_000, words_per_vertex=8)
        assert budget.budget_bytes == 1_000 * 8 * 4
