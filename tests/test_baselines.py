"""Unit tests for the comparator algorithms (DynamicUpdate, STXXL, exact, local search)."""

from __future__ import annotations

import pytest

from repro.baselines.dynamic_update import dynamic_update_mis
from repro.baselines.exact import exact_mis, independence_number
from repro.baselines.external_mis import SimulatedExternalPriorityQueue, external_maximal_is
from repro.baselines.local_search import local_search_mis
from repro.baselines.unsorted import baseline_mis
from repro.core.greedy import greedy_mis
from repro.errors import MemoryBudgetError, SolverError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.storage.io_stats import IOStats
from repro.validation.checks import is_independent_set, is_maximal_independent_set


class TestDynamicUpdate:
    def test_simple_graphs(self):
        assert dynamic_update_mis(star_graph(7)).size == 7
        assert dynamic_update_mis(complete_graph(5)).size == 1
        assert dynamic_update_mis(path_graph(9)).size == 5
        assert dynamic_update_mis(empty_graph(4)).size == 4

    def test_result_is_maximal_independent(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(120, 400, seed=seed)
            result = dynamic_update_mis(graph)
            assert is_maximal_independent_set(graph, result.independent_set)

    def test_usually_at_least_as_good_as_lazy_greedy(self, small_plrg_graph):
        dynamic = dynamic_update_mis(small_plrg_graph)
        lazy = greedy_mis(small_plrg_graph)
        # DynamicUpdate updates degrees, so it should not be worse here.
        assert dynamic.size >= lazy.size - 2

    def test_memory_limit_produces_not_applicable(self):
        graph = erdos_renyi_gnm(200, 600, seed=1)
        with pytest.raises(MemoryBudgetError):
            dynamic_update_mis(graph, memory_limit_bytes=100)

    def test_memory_model_reported(self):
        graph = erdos_renyi_gnm(100, 300, seed=2)
        result = dynamic_update_mis(graph)
        assert result.memory_bytes == (2 * 300 + 4 * 100) * 4
        assert result.algorithm == "dynamic_update"

    def test_initial_size_matches_built_set(self):
        # DynamicUpdate is constructive: it reports the set it built as its
        # own starting point, so improvement-ratio reporting sees zero gain
        # (consistent with the swap pipelines) instead of a bogus +size.
        graph = erdos_renyi_gnm(150, 500, seed=7)
        result = dynamic_update_mis(graph)
        assert result.initial_size == result.size
        assert result.total_gain == 0

    def test_backends_agree(self):
        graph = erdos_renyi_gnm(200, 700, seed=9)
        python = dynamic_update_mis(graph, backend="python")
        vectorized = dynamic_update_mis(graph, backend="numpy")
        assert python.independent_set == vectorized.independent_set


class TestExternalMaximalIS:
    def test_result_is_maximal_independent(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(120, 400, seed=seed)
            result = external_maximal_is(graph)
            assert is_maximal_independent_set(graph, result.independent_set)

    def test_is_the_lexicographically_first_mis(self):
        graph = path_graph(5)
        result = external_maximal_is(graph)
        assert result.independent_set == frozenset({0, 2, 4})

    def test_queue_io_is_charged(self):
        graph = erdos_renyi_gnm(200, 2_000, seed=3)
        result = external_maximal_is(graph, block_size=256)
        assert result.io.bytes_written > 0
        assert result.extras["max_queue_entries"] > 0

    def test_usually_worse_than_degree_ordered_greedy(self, small_plrg_graph):
        external = external_maximal_is(small_plrg_graph)
        greedy = greedy_mis(small_plrg_graph)
        assert external.size <= greedy.size

    def test_priority_queue_pop_until(self):
        queue = SimulatedExternalPriorityQueue(stats=IOStats(), block_size=64)
        queue.push(5, 50)
        queue.push(2, 20)
        queue.push(9, 90)
        assert queue.pop_until(5) == [20, 50]
        assert len(queue) == 1
        queue.flush_accounting()
        assert queue.stats.bytes_written > 0


class TestExactSolver:
    def test_known_optima(self, known_optimum_graph):
        graph, optimum = known_optimum_graph
        assert independence_number(graph) == optimum

    def test_bipartite_optimum(self):
        assert independence_number(complete_bipartite_graph(5, 9)) == 9

    def test_cycle_optimum(self):
        assert independence_number(cycle_graph(11)) == 5

    def test_result_is_independent(self, small_random_graph):
        result = exact_mis(small_random_graph)
        assert is_independent_set(small_random_graph, result.independent_set)

    def test_exact_dominates_heuristics(self, small_random_graph):
        optimum = independence_number(small_random_graph)
        assert optimum >= greedy_mis(small_random_graph).size
        assert optimum >= dynamic_update_mis(small_random_graph).size

    def test_node_budget_guard(self):
        graph = erdos_renyi_gnm(80, 600, seed=4)
        with pytest.raises(SolverError):
            exact_mis(graph, max_nodes=10)

    def test_nodes_expanded_recorded(self, small_random_graph):
        result = exact_mis(small_random_graph)
        assert result.extras["nodes_expanded"] >= 1


class TestLocalSearch:
    def test_improves_or_matches_greedy(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(150, 600, seed=seed)
            greedy = greedy_mis(graph)
            improved = local_search_mis(graph, initial=greedy)
            assert improved.size >= greedy.size
            assert is_maximal_independent_set(graph, improved.independent_set)

    def test_star_swap(self):
        graph = star_graph(6)
        result = local_search_mis(graph, initial={0})
        assert result.size == 6

    def test_accepts_default_initial(self):
        graph = erdos_renyi_gnm(100, 300, seed=5)
        result = local_search_mis(graph)
        assert is_maximal_independent_set(graph, result.independent_set)

    def test_iteration_limit_respected(self):
        graph = erdos_renyi_gnm(150, 600, seed=6)
        result = local_search_mis(graph, max_iterations=1)
        assert result.extras["iterations"] <= 1

    def test_zero_iterations_returns_initial_untouched(self):
        # The safety valve must bound *all* work: no maximalisation runs
        # on a caller-supplied set when the budget is zero.
        graph = star_graph(5)
        result = local_search_mis(graph, initial={2}, max_iterations=0)
        assert result.independent_set == frozenset({2})
        assert result.extras["iterations"] == 0.0

    def test_memory_model_reported_and_limited(self):
        graph = erdos_renyi_gnm(100, 300, seed=8)
        result = local_search_mis(graph)
        assert result.memory_bytes > 0
        with pytest.raises(MemoryBudgetError):
            local_search_mis(graph, memory_limit_bytes=result.memory_bytes - 1)


class TestBaselineWrapper:
    def test_baseline_matches_id_order_greedy(self, medium_random_graph):
        assert (
            baseline_mis(medium_random_graph).independent_set
            == greedy_mis(medium_random_graph, order="id").independent_set
        )

    def test_baseline_is_maximal(self, medium_random_graph):
        result = baseline_mis(medium_random_graph)
        assert is_maximal_independent_set(medium_random_graph, result.independent_set)
