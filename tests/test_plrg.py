"""Unit tests for the power-law random graph model P(alpha, beta)."""

from __future__ import annotations

import math

import pytest

from repro.errors import AnalysisError
from repro.graphs.plrg import (
    PLRGParameters,
    alpha_for_vertex_count,
    plrg_degree_sequence,
    plrg_expected_edges,
    plrg_expected_vertices,
    plrg_graph,
    plrg_graph_with_vertex_count,
    plrg_max_degree,
    zeta_partial,
)


class TestZetaPartial:
    def test_matches_manual_sum(self):
        assert zeta_partial(2.0, 3) == pytest.approx(1 + 1 / 4 + 1 / 9)

    def test_zero_terms_is_zero(self):
        assert zeta_partial(2.0, 0) == 0.0

    def test_rejects_negative_terms(self):
        with pytest.raises(AnalysisError):
            zeta_partial(2.0, -1)

    def test_monotone_in_terms(self):
        assert zeta_partial(1.5, 100) > zeta_partial(1.5, 10)


class TestModelQuantities:
    def test_max_degree_formula(self):
        assert plrg_max_degree(10.0, 2.0) == int(math.floor(math.exp(5.0)))

    def test_max_degree_rejects_non_positive_beta(self):
        with pytest.raises(AnalysisError):
            plrg_max_degree(5.0, 0.0)

    def test_expected_vertices_matches_degree_sequence(self):
        params = PLRGParameters(alpha=7.0, beta=2.2)
        sequence = plrg_degree_sequence(params)
        # The deterministic sequence floors each class, so it is within the
        # number of degree classes of the analytic estimate.
        assert len(sequence) <= plrg_expected_vertices(7.0, 2.2)
        assert len(sequence) >= plrg_expected_vertices(7.0, 2.2) - params.max_degree

    def test_expected_edges_are_half_the_stub_count(self):
        alpha, beta = 7.0, 2.2
        delta = plrg_max_degree(alpha, beta)
        stubs = sum(math.exp(alpha) / d ** (beta - 1) for d in range(1, delta + 1))
        assert plrg_expected_edges(alpha, beta) == pytest.approx(stubs / 2, rel=1e-9)

    def test_alpha_for_vertex_count_round_trips(self):
        alpha = alpha_for_vertex_count(5_000, 2.1)
        assert plrg_expected_vertices(alpha, 2.1) == pytest.approx(5_000, rel=0.01)

    def test_alpha_for_vertex_count_rejects_zero(self):
        with pytest.raises(AnalysisError):
            alpha_for_vertex_count(0, 2.1)

    def test_parameters_from_vertex_count(self):
        params = PLRGParameters.from_vertex_count(3_000, 2.3)
        assert params.expected_vertices == pytest.approx(3_000, rel=0.01)
        assert params.beta == 2.3

    def test_vertices_with_degree_rejects_zero_degree(self):
        params = PLRGParameters(alpha=6.0, beta=2.0)
        with pytest.raises(AnalysisError):
            params.vertices_with_degree(0)

    def test_degree_one_class_is_largest(self):
        params = PLRGParameters(alpha=8.0, beta=2.0)
        assert params.vertices_with_degree(1) > params.vertices_with_degree(2)


class TestPLRGSampling:
    def test_graph_is_reproducible(self):
        params = PLRGParameters.from_vertex_count(800, 2.2)
        assert plrg_graph(params, seed=5) == plrg_graph(params, seed=5)

    def test_vertex_count_matches_degree_sequence(self):
        params = PLRGParameters.from_vertex_count(800, 2.2)
        sequence = plrg_degree_sequence(params)
        graph = plrg_graph(params, seed=1)
        assert graph.num_vertices == len(sequence)

    def test_sorted_by_degree_order(self):
        params = PLRGParameters.from_vertex_count(600, 2.0)
        graph = plrg_graph(params, seed=2, sort_by_degree=True)
        # The intended degrees are non-decreasing in vertex id; after
        # dropping collisions the realised degrees stay roughly monotone:
        # vertex 0 has a small degree and the last vertex a large one.
        assert graph.degree(0) <= graph.degree(graph.num_vertices - 1)

    def test_edge_count_is_close_to_expected(self):
        params = PLRGParameters.from_vertex_count(2_000, 2.0)
        graph = plrg_graph(params, seed=3)
        expected = plrg_expected_edges(params.alpha, params.beta)
        # Collisions remove a few edges; 15% tolerance is ample.
        assert graph.num_edges == pytest.approx(expected, rel=0.15)

    def test_with_vertex_count_helper(self):
        graph = plrg_graph_with_vertex_count(700, 2.4, seed=4)
        assert graph.num_vertices == pytest.approx(700, rel=0.1)

    def test_power_law_shape(self):
        graph = plrg_graph_with_vertex_count(3_000, 2.1, seed=6)
        histogram = graph.degree_histogram()
        low = sum(count for degree, count in histogram.items() if degree <= 2)
        high = sum(count for degree, count in histogram.items() if degree >= 10)
        assert low > 5 * max(high, 1)
