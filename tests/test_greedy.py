"""Unit tests for Algorithm 1, the semi-external greedy pass."""

from __future__ import annotations

import pytest

from repro.baselines.unsorted import baseline_mis
from repro.core.greedy import greedy_mis
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.scan import InMemoryAdjacencyScan
from repro.validation.checks import is_independent_set, is_maximal_independent_set


class TestGreedyCorrectness:
    def test_empty_graph_returns_all_vertices(self):
        result = greedy_mis(empty_graph(10))
        assert result.size == 10

    def test_zero_vertex_graph(self):
        result = greedy_mis(empty_graph(0))
        assert result.size == 0

    def test_complete_graph_returns_single_vertex(self):
        result = greedy_mis(complete_graph(8))
        assert result.size == 1

    def test_star_graph_returns_all_leaves(self):
        result = greedy_mis(star_graph(9))
        assert result.size == 9
        assert 0 not in result.independent_set

    def test_bipartite_graph_returns_larger_side(self):
        result = greedy_mis(complete_bipartite_graph(3, 8))
        assert result.size == 8

    def test_path_graph_is_optimal(self):
        # Degree-ordered greedy alternates correctly on a path.
        result = greedy_mis(path_graph(11))
        assert result.size == 6

    def test_cycle_graph_near_optimal(self):
        result = greedy_mis(cycle_graph(10))
        assert result.size >= 4

    def test_result_is_always_maximal_independent(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(150, 450, seed=seed)
            result = greedy_mis(graph)
            assert is_independent_set(graph, result.independent_set)
            assert is_maximal_independent_set(graph, result.independent_set)

    def test_known_optimum_graphs(self, known_optimum_graph):
        graph, optimum = known_optimum_graph
        result = greedy_mis(graph)
        assert result.size <= optimum
        assert is_maximal_independent_set(graph, result.independent_set)


class TestGreedyOrderingEffect:
    def test_degree_order_beats_id_order_on_adversarial_graph(self):
        # Hub vertex 0 is connected to many leaves; id order picks the hub
        # first, degree order picks the leaves.
        graph = Graph(11, [(0, i) for i in range(1, 11)])
        sorted_result = greedy_mis(graph, order="degree")
        unsorted_result = greedy_mis(graph, order="id")
        assert sorted_result.size == 10
        assert unsorted_result.size == 1

    def test_baseline_wrapper_uses_id_order(self):
        graph = Graph(11, [(0, i) for i in range(1, 11)])
        result = baseline_mis(graph)
        assert result.algorithm == "baseline"
        assert result.size == 1

    def test_degree_order_never_smaller_on_power_law_like_graphs(self, small_plrg_graph):
        sorted_result = greedy_mis(small_plrg_graph, order="degree")
        unsorted_result = greedy_mis(small_plrg_graph, order="id")
        assert sorted_result.size >= unsorted_result.size


class TestGreedyTelemetry:
    def test_single_sequential_scan(self, medium_random_graph):
        source = InMemoryAdjacencyScan(medium_random_graph)
        result = greedy_mis(source)
        assert result.io.sequential_scans == 1
        assert result.io.random_vertex_lookups == 0

    def test_memory_model_reported(self, medium_random_graph):
        result = greedy_mis(medium_random_graph)
        assert result.memory_bytes == pytest.approx(medium_random_graph.num_vertices / 8, abs=1)

    def test_runs_from_file_reader(self, medium_random_graph):
        reader = AdjacencyFileReader(write_adjacency_file(medium_random_graph))
        result = greedy_mis(reader)
        assert is_maximal_independent_set(medium_random_graph, result.independent_set)
        assert result.io.sequential_scans == 1

    def test_elapsed_time_recorded(self, medium_random_graph):
        result = greedy_mis(medium_random_graph)
        assert result.elapsed_seconds > 0
        assert result.algorithm == "greedy"
        assert result.initial_size == 0
        assert result.rounds == ()
