"""Unit tests for the vertex state machine and the result objects."""

from __future__ import annotations

import pytest

from repro.core.result import MISResult, RoundStats
from repro.core.states import VertexState
from repro.storage.io_stats import IOStats


class TestVertexState:
    def test_letters_match_paper_notation(self):
        assert VertexState.IS.letter == "I"
        assert VertexState.NON_IS.letter == "N"
        assert VertexState.ADJACENT.letter == "A"
        assert VertexState.PROTECTED.letter == "P"
        assert VertexState.CONFLICT.letter == "C"
        assert VertexState.RETROGRADE.letter == "R"

    def test_from_letter_roundtrip(self):
        for state in VertexState:
            if state is VertexState.INITIAL:
                continue
            assert VertexState.from_letter(state.letter) is state

    def test_from_letter_is_case_insensitive(self):
        assert VertexState.from_letter("p") is VertexState.PROTECTED

    def test_from_letter_rejects_unknown(self):
        with pytest.raises(ValueError):
            VertexState.from_letter("X")

    def test_membership_helpers(self):
        assert VertexState.IS.in_independent_set
        assert not VertexState.PROTECTED.in_independent_set
        assert VertexState.ADJACENT.is_swap_candidate
        assert not VertexState.CONFLICT.is_swap_candidate


def _result_with_rounds() -> MISResult:
    rounds = (
        RoundStats(round_index=1, gained=10, one_k_swaps=8, two_k_swaps=0,
                   zero_one_swaps=2, is_size_after=110),
        RoundStats(round_index=2, gained=3, one_k_swaps=3, two_k_swaps=0,
                   zero_one_swaps=0, is_size_after=113),
        RoundStats(round_index=3, gained=1, one_k_swaps=1, two_k_swaps=0,
                   zero_one_swaps=0, is_size_after=114),
    )
    return MISResult(
        algorithm="one_k_swap",
        independent_set=frozenset(range(114)),
        rounds=rounds,
        io=IOStats(sequential_scans=7),
        memory_bytes=512,
        elapsed_seconds=0.5,
        initial_size=100,
    )


class TestMISResult:
    def test_size_and_rounds(self):
        result = _result_with_rounds()
        assert result.size == 114
        assert result.num_rounds == 3
        assert result.total_gain == 14

    def test_gain_after_rounds(self):
        result = _result_with_rounds()
        assert result.gain_after_rounds(1) == 10
        assert result.gain_after_rounds(2) == 13
        assert result.gain_after_rounds(10) == 14

    def test_swap_completion_ratio(self):
        result = _result_with_rounds()
        assert result.swap_completion_ratio(1) == pytest.approx(10 / 14)
        assert result.swap_completion_ratio(3) == pytest.approx(1.0)

    def test_swap_completion_ratio_with_no_gain(self):
        result = MISResult(
            algorithm="one_k_swap", independent_set=frozenset({1, 2}), initial_size=2
        )
        assert result.swap_completion_ratio(1) == 1.0

    def test_approximation_ratio(self):
        result = _result_with_rounds()
        assert result.approximation_ratio(120) == pytest.approx(114 / 120)
        with pytest.raises(ValueError):
            result.approximation_ratio(0)

    def test_summary_contains_key_metrics(self):
        summary = _result_with_rounds().summary()
        assert summary["algorithm"] == "one_k_swap"
        assert summary["size"] == 114
        assert summary["sequential_scans"] == 7

    def test_with_algorithm_relabels_only_the_name(self):
        result = _result_with_rounds()
        renamed = result.with_algorithm("baseline")
        assert renamed.algorithm == "baseline"
        assert renamed.independent_set == result.independent_set
        assert renamed.rounds == result.rounds
