"""Robustness tests of the versioned checkpoint file format."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    read_checkpoint,
    write_checkpoint,
)

PAYLOAD = {
    "spec": {"name": "two_k_swap", "stages": [{"stage": "greedy"}]},
    "io": {"bytes_read": 123, "sequential_scans": 4},
    "loop_state": {"state": [0, 1, 2], "history": None},
    "stage_index": 1,
}


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        assert read_checkpoint(path) == PAYLOAD

    def test_overwrite_replaces_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        write_checkpoint(path, {"stage_index": 2})
        assert read_checkpoint(path) == {"stage_index": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_unserializable_payload_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(CheckpointError):
            write_checkpoint(path, {"bad": object()})


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            read_checkpoint(str(tmp_path / "absent.json"))

    def test_truncated_payload(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) - 20])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = bytearray(open(path, "rb").read())
        # Flip a digit inside the payload (after the header newline) without
        # changing the length.
        body_start = data.index(b"\n") + 1
        slot = data.index(b"123", body_start)
        data[slot] = ord("9")
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)

    def test_not_a_checkpoint_file(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            handle.write("definitely not json\n{}")
        with pytest.raises(CheckpointCorruptError, match="not a checkpoint"):
            read_checkpoint(path)

    def test_other_json_is_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "something": "else"}, handle)
        with pytest.raises(CheckpointCorruptError, match="format marker"):
            read_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = open(path, "rb").read()
        header_line, _, rest = data.partition(b"\n")
        header = json.loads(header_line)
        assert header["format"] == CHECKPOINT_FORMAT
        header["version"] = CHECKPOINT_VERSION + 1
        with open(path, "wb") as handle:
            handle.write(json.dumps(header).encode() + b"\n" + rest)
        with pytest.raises(CheckpointVersionError) as excinfo:
            read_checkpoint(path)
        assert excinfo.value.found == CHECKPOINT_VERSION + 1
        assert excinfo.value.supported == CHECKPOINT_VERSION
        assert "re-run without --resume" in str(excinfo.value)

    def test_failures_are_typed_checkpoint_errors(self, tmp_path):
        # Every failure mode derives from CheckpointError, so callers can
        # catch the whole family at once.
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointVersionError, CheckpointError)
