"""Robustness tests of the versioned checkpoint file format."""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from repro.storage.checkpoint import (
    ARRAY_MIN_LENGTH,
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    encode_section,
    read_checkpoint,
    write_checkpoint,
)

PAYLOAD = {
    "spec": {"name": "two_k_swap", "stages": [{"stage": "greedy"}]},
    "io": {"bytes_read": 123, "sequential_scans": 4},
    "loop_state": {"state": [0, 1, 2], "history": None},
    "stage_index": 1,
}


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        assert read_checkpoint(path) == PAYLOAD

    def test_overwrite_replaces_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        write_checkpoint(path, {"stage_index": 2})
        assert read_checkpoint(path) == {"stage_index": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_unserializable_payload_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(CheckpointError):
            write_checkpoint(path, {"bad": object()})


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            read_checkpoint(str(tmp_path / "absent.json"))

    def test_truncated_payload(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) - 20])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = bytearray(open(path, "rb").read())
        # Flip a digit inside the payload (after the header newline) without
        # changing the length.
        body_start = data.index(b"\n") + 1
        slot = data.index(b"123", body_start)
        data[slot] = ord("9")
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)

    def test_not_a_checkpoint_file(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            handle.write("definitely not json\n{}")
        with pytest.raises(CheckpointCorruptError, match="not a checkpoint"):
            read_checkpoint(path)

    def test_other_json_is_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "something": "else"}, handle)
        with pytest.raises(CheckpointCorruptError, match="format marker"):
            read_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, PAYLOAD)
        data = open(path, "rb").read()
        header_line, _, rest = data.partition(b"\n")
        header = json.loads(header_line)
        assert header["format"] == CHECKPOINT_FORMAT
        header["version"] = CHECKPOINT_VERSION + 1
        with open(path, "wb") as handle:
            handle.write(json.dumps(header).encode() + b"\n" + rest)
        with pytest.raises(CheckpointVersionError) as excinfo:
            read_checkpoint(path)
        assert excinfo.value.found == CHECKPOINT_VERSION + 1
        assert excinfo.value.supported == CHECKPOINT_VERSION
        assert "re-run without --resume" in str(excinfo.value)

    def test_failures_are_typed_checkpoint_errors(self, tmp_path):
        # Every failure mode derives from CheckpointError, so callers can
        # catch the whole family at once.
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointVersionError, CheckpointError)

    def test_truncated_arrays_section(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, {"state": list(range(5000))})
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-10])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_arrays_byte_fails_checksum(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, {"state": list(range(5000))})
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)


class TestBinaryArrays:
    """Format v2: long int lists live in the compressed arrays section."""

    def test_long_int_lists_round_trip(self, tmp_path):
        rng = random.Random(7)
        payload = {
            "state": [rng.randrange(0, 7) for _ in range(10_000)],
            "isn": [rng.randrange(-1, 1 << 40) for _ in range(10_000)],
            "nested": {"deep": [list(range(100)), "text", None]},
            "short": [1, 2, 3],
        }
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload

    def test_arrays_leave_the_json_payload(self, tmp_path):
        path = str(tmp_path / "ck.json")
        values = list(range(100_000))
        write_checkpoint(path, {"big": values})
        header_line, _, _rest = open(path, "rb").read().partition(b"\n")
        header = json.loads(header_line)
        # The JSON payload holds only the reference, not 100k literals.
        assert header["payload_bytes"] < 200
        assert header["arrays_bytes"] > 0

    def test_binary_checkpoint_much_smaller_than_json_lists(self, tmp_path):
        """The satellite's acceptance bar: measurably smaller at n >= 1e5.

        A round checkpoint's bulk is the vertex-state array (tiny ints)
        and the ISN array (vertex ids); both must shrink by far more
        than "measurable" against their version-1 JSON int-list form.
        """

        rng = random.Random(13)
        n = 100_000
        state = [rng.randrange(0, 7) for _ in range(n)]
        isn = [rng.randrange(-1, n) for _ in range(n)]
        payload = {"loop_state": {"state": state, "isn": isn}}
        path = str(tmp_path / "ck.bin")
        write_checkpoint(path, payload)
        binary_size = os.path.getsize(path)
        json_size = len(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        )
        assert binary_size < json_size / 2, (binary_size, json_size)

    def test_threshold_keeps_short_lists_inline(self, tmp_path):
        path = str(tmp_path / "ck.json")
        short = list(range(ARRAY_MIN_LENGTH - 1))
        write_checkpoint(path, {"short": short})
        header_line, _, _ = open(path, "rb").read().partition(b"\n")
        assert json.loads(header_line)["arrays_bytes"] == 0

    def test_mixed_type_lists_stay_inline(self, tmp_path):
        path = str(tmp_path / "ck.json")
        mixed = list(range(100)) + ["x"]
        write_checkpoint(path, {"mixed": mixed})
        assert read_checkpoint(path) == {"mixed": mixed}
        header_line, _, _ = open(path, "rb").read().partition(b"\n")
        assert json.loads(header_line)["arrays_bytes"] == 0

    def test_reserved_key_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(CheckpointError, match="reserved"):
            write_checkpoint(path, {"payload": {"__ckarray__": [0, 1, "b", 1]}})

    def test_extreme_values_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        values = [-(2 ** 63), 2 ** 63 - 1, 0, -1] * 16
        write_checkpoint(path, {"extremes": values})
        assert read_checkpoint(path) == {"extremes": values}


class TestEncodedSections:
    """Pre-encoded sections splice in without re-encoding — and identically."""

    PAYLOAD_REST = {
        "io": {"bytes_read": 9},
        "loop_state": {"state": list(range(4000)), "round": 3},
        "phase": "round",
    }
    COMPLETED = [
        {"report": {"stage": "greedy"}, "result": {"independent_set": list(range(2000))}}
    ]

    def test_sectioned_write_is_byte_identical_to_plain(self, tmp_path):
        plain = str(tmp_path / "plain.ck")
        spliced = str(tmp_path / "spliced.ck")
        merged = dict(self.PAYLOAD_REST, completed=self.COMPLETED)
        write_checkpoint(plain, merged)
        section = encode_section(self.COMPLETED, base_offset=0)
        write_checkpoint(
            spliced, dict(self.PAYLOAD_REST), sections={"completed": section}
        )
        assert open(plain, "rb").read() == open(spliced, "rb").read()

    def test_cached_section_reused_across_writes(self, tmp_path):
        section = encode_section(self.COMPLETED, base_offset=0)
        for round_index in range(3):
            path = str(tmp_path / f"ck{round_index}")
            rest = dict(self.PAYLOAD_REST)
            rest["loop_state"] = {"state": list(range(4000)), "round": round_index}
            write_checkpoint(path, rest, sections={"completed": section})
            payload = read_checkpoint(path)
            assert payload["completed"] == self.COMPLETED
            assert payload["loop_state"]["round"] == round_index

    def test_wrong_base_offset_rejected(self, tmp_path):
        section = encode_section(self.COMPLETED, base_offset=999)
        with pytest.raises(CheckpointError, match="arrays offset"):
            write_checkpoint(
                str(tmp_path / "ck"), {}, sections={"completed": section}
            )

    def test_section_key_collision_rejected(self, tmp_path):
        section = encode_section([], base_offset=0)
        with pytest.raises(CheckpointError, match="duplicate"):
            write_checkpoint(
                str(tmp_path / "ck"),
                {"completed": []},
                sections={"completed": section},
            )
