"""End-to-end integration tests: generate → serialise → sort → solve → verify.

These exercise the full semi-external workflow a downstream user would run:
an unsorted adjacency file on disk is degree-sorted with the external
sorter, then the greedy / swap pipeline runs against the sorted file, and
the results are validated against the in-memory ground truth.
"""

from __future__ import annotations

import pytest

from repro.analysis.upper_bound import independence_upper_bound
from repro.baselines.external_mis import external_maximal_is
from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.core.two_k_swap import two_k_swap
from repro.graphs.datasets import load_dataset
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.external_sort import external_sort_by_degree
from repro.storage.memory import MemoryBudget, MemoryModel
from repro.validation.checks import is_independent_set, is_maximal_independent_set


@pytest.fixture(scope="module")
def workload_graph():
    """A power-law workload graph of ~2,500 vertices shared by the module."""

    return plrg_graph_with_vertex_count(2_500, 2.0, seed=42, sort_by_degree=False)


class TestFullSemiExternalWorkflow:
    def test_disk_pipeline_matches_in_memory_pipeline(self, workload_graph, tmp_path):
        # 1. Write the unsorted file the way a crawler would produce it.
        raw_path = tmp_path / "raw.adj"
        write_adjacency_file(
            workload_graph, str(raw_path), order=range(workload_graph.num_vertices)
        ).close()

        # 2. Degree-sort it under a small memory budget.
        sorted_path = tmp_path / "sorted.adj"
        raw_reader = AdjacencyFileReader(str(raw_path))
        sort_result = external_sort_by_degree(
            raw_reader, output_backing=str(sorted_path), memory_budget=16 * 1024
        )
        assert sort_result.num_runs >= 1

        # 3. Run the full pipeline against the sorted file.
        sorted_reader = sort_result.reader
        greedy = greedy_mis(sorted_reader)
        improved = two_k_swap(sorted_reader, initial=greedy)

        # 4. Verify against the in-memory ground truth.
        assert is_maximal_independent_set(workload_graph, improved.independent_set)
        in_memory = two_k_swap(workload_graph, initial=greedy_mis(workload_graph))
        assert improved.size == pytest.approx(in_memory.size, abs=max(3, in_memory.size // 100))

    def test_semi_external_memory_budget_is_respected(self, workload_graph):
        # The problem statement allows c|V| words of memory; the modeled
        # footprints of all three passes must fit, while the in-memory
        # DynamicUpdate baseline must not for a dense enough graph.
        n = workload_graph.num_vertices
        model = MemoryModel()
        budget = MemoryBudget.semi_external(n, words_per_vertex=4)
        budget.charge("greedy", model.greedy_bytes(n))
        budget.release("greedy")
        budget.charge("one_k", model.one_k_swap_bytes(n))
        budget.release("one_k")
        budget.charge("two_k", model.two_k_swap_bytes(n, int(0.13 * n)))

    def test_io_shape_single_scan_greedy_versus_multi_scan_swaps(self, workload_graph):
        greedy_reader = AdjacencyFileReader(write_adjacency_file(workload_graph))
        greedy = greedy_mis(greedy_reader)
        swap_reader = AdjacencyFileReader(write_adjacency_file(workload_graph))
        swaps = one_k_swap(swap_reader, initial=greedy.independent_set)
        assert greedy.io.sequential_scans == 1
        assert swaps.io.sequential_scans > greedy.io.sequential_scans
        # Sequential scans dominate: random record lookups stay negligible.
        assert swaps.io.random_vertex_lookups == 0

    def test_dataset_standins_run_through_the_whole_stack(self):
        graph = load_dataset("astroph", scale=0.01, seed=5)
        bound = independence_upper_bound(graph)
        greedy = greedy_mis(graph)
        two_k = two_k_swap(graph, initial=greedy)
        external = external_maximal_is(graph)
        assert is_independent_set(graph, two_k.independent_set)
        assert greedy.size <= two_k.size <= bound
        assert external.size <= bound

    def test_results_are_deterministic_for_a_fixed_seed(self):
        first = two_k_swap(plrg_graph_with_vertex_count(1_000, 2.2, seed=9))
        second = two_k_swap(plrg_graph_with_vertex_count(1_000, 2.2, seed=9))
        assert first.independent_set == second.independent_set
