"""Unit tests for Algorithm 2, the one-k-swap pass."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.errors import SolverError
from repro.graphs.cascade import cascade_initial_independent_set, cascade_swap_graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.validation.checks import is_independent_set, is_maximal_independent_set


def figure2_graph() -> Graph:
    """The swap-conflict example of Figure 2.

    Vertices 0 (v1) and 3 (v4) are in the initial IS; v1 can be exchanged
    with {v2, v3} and v4 with {v5, v6}, but v3 and v5 are adjacent, so the
    two swaps conflict and only one may be performed.
    """

    # v1=0, v2=1, v3=2, v4=3, v5=4, v6=5
    return Graph(6, [(0, 1), (0, 2), (3, 4), (3, 5), (2, 4)])


class TestOneKSwapBasics:
    def test_improves_a_seeded_star_swap(self):
        # Initial set {centre}; the swap replaces it by all leaves.
        graph = star_graph(5)
        result = one_k_swap(graph, initial={0})
        assert result.size == 5
        assert 0 not in result.independent_set

    def test_never_decreases_the_initial_size(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(120, 360, seed=seed)
            start = greedy_mis(graph)
            result = one_k_swap(graph, initial=start)
            assert result.size >= start.size
            assert result.initial_size == start.size

    def test_output_is_maximal_independent(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(150, 500, seed=seed)
            result = one_k_swap(graph)
            assert is_independent_set(graph, result.independent_set)
            assert is_maximal_independent_set(graph, result.independent_set)

    def test_empty_and_trivial_graphs(self):
        assert one_k_swap(empty_graph(4)).size == 4
        assert one_k_swap(complete_graph(5)).size == 1
        assert one_k_swap(path_graph(2)).size == 1

    def test_default_initial_is_greedy(self):
        graph = erdos_renyi_gnm(100, 300, seed=3)
        explicit = one_k_swap(graph, initial=greedy_mis(graph))
        implicit = one_k_swap(graph)
        assert implicit.size == explicit.size

    def test_invalid_initial_vertex_rejected(self):
        with pytest.raises(SolverError):
            one_k_swap(path_graph(3), initial={7})

    def test_known_optimum_graphs_never_exceed_optimum(self, known_optimum_graph):
        graph, optimum = known_optimum_graph
        result = one_k_swap(graph)
        assert result.size <= optimum
        assert is_maximal_independent_set(graph, result.independent_set)


class TestSwapConflictResolution:
    def test_figure2_conflict_allows_exactly_one_swap(self):
        graph = figure2_graph()
        result = one_k_swap(graph, initial={0, 3}, order="id")
        # One of the two conflicting 1-2 swaps is performed; the final set
        # has 3 vertices (the paper's Example 1 ends with {v2, v3, v4}).
        assert result.size == 3
        assert is_independent_set(graph, result.independent_set)

    def test_figure2_without_conflict_edge_allows_both_swaps(self):
        # Removing the conflicting edge (v3, v5) lets both swaps happen.
        graph = Graph(6, [(0, 1), (0, 2), (3, 4), (3, 5)])
        result = one_k_swap(graph, initial={0, 3}, order="id")
        assert result.size == 4


class TestCascadeBehaviour:
    def test_cascade_graph_requires_one_round_per_triple(self):
        num_triples = 4
        graph = cascade_swap_graph(num_triples)
        initial = cascade_initial_independent_set(num_triples)
        result = one_k_swap(graph, initial=initial, order="id")
        assert result.size == 2 * num_triples
        # One 1-2 swap cascades per round (plus a final no-op round).
        assert result.num_rounds >= num_triples

    def test_max_rounds_early_stop(self):
        num_triples = 5
        graph = cascade_swap_graph(num_triples)
        initial = cascade_initial_independent_set(num_triples)
        limited = one_k_swap(graph, initial=initial, order="id", max_rounds=1)
        full = one_k_swap(graph, initial=initial, order="id")
        assert limited.num_rounds == 1
        assert limited.size < full.size
        assert is_independent_set(graph, limited.independent_set)


class TestOneKSwapTelemetry:
    def test_round_stats_are_consistent(self):
        graph = erdos_renyi_gnm(200, 700, seed=9)
        result = one_k_swap(graph)
        assert result.num_rounds >= 1
        total_gain = sum(r.gained for r in result.rounds)
        assert total_gain == result.size - result.initial_size
        assert result.rounds[-1].is_size_after == result.size

    def test_round_indices_are_sequential(self):
        graph = erdos_renyi_gnm(200, 700, seed=10)
        result = one_k_swap(graph)
        assert [r.round_index for r in result.rounds] == list(range(1, result.num_rounds + 1))

    def test_no_random_lookups_needed(self):
        graph = erdos_renyi_gnm(200, 700, seed=11)
        result = one_k_swap(graph)
        assert result.io.random_vertex_lookups == 0

    def test_memory_model_is_two_words_per_vertex(self):
        graph = erdos_renyi_gnm(100, 200, seed=12)
        result = one_k_swap(graph)
        assert result.memory_bytes == graph.num_vertices * 5

    def test_runs_from_file_reader(self):
        graph = erdos_renyi_gnm(150, 500, seed=13)
        reader = AdjacencyFileReader(write_adjacency_file(graph))
        result = one_k_swap(reader)
        assert is_maximal_independent_set(graph, result.independent_set)
        assert result.io.sequential_scans >= 3
