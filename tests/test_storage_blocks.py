"""Unit tests for IOStats and the BlockDevice abstraction."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.blocks import BlockDevice
from repro.storage.io_stats import IOStats


class TestIOStats:
    def test_record_read_sequential_does_not_count_seek(self):
        stats = IOStats()
        stats.record_read(100, 1, sequential=True)
        assert stats.bytes_read == 100
        assert stats.blocks_read == 1
        assert stats.random_seeks == 0

    def test_record_read_random_counts_seek(self):
        stats = IOStats()
        stats.record_read(100, 2, sequential=False)
        assert stats.random_seeks == 1
        assert stats.blocks_read == 2

    def test_record_write_and_scan(self):
        stats = IOStats()
        stats.record_write(64, 1)
        stats.record_scan()
        stats.record_vertex_lookup()
        assert stats.bytes_written == 64
        assert stats.sequential_scans == 1
        assert stats.random_vertex_lookups == 1

    def test_merge_and_add(self):
        a = IOStats(bytes_read=10, sequential_scans=1)
        b = IOStats(bytes_read=5, random_seeks=2)
        combined = a + b
        assert combined.bytes_read == 15
        assert combined.sequential_scans == 1
        assert combined.random_seeks == 2
        # The originals are untouched.
        assert a.bytes_read == 10

    def test_copy_is_independent(self):
        a = IOStats(bytes_read=10)
        b = a.copy()
        b.record_read(5, 1, True)
        assert a.bytes_read == 10
        assert b.bytes_read == 15

    def test_delta_since(self):
        a = IOStats()
        snapshot = a.copy()
        a.record_read(100, 1, True)
        a.record_scan()
        delta = a.delta_since(snapshot)
        assert delta.bytes_read == 100
        assert delta.sequential_scans == 1

    def test_as_dict_and_str(self):
        stats = IOStats(blocks_read=3)
        assert stats.as_dict()["blocks_read"] == 3
        assert "blocks_read=3" in str(stats)


class TestBlockDevice:
    def test_in_memory_roundtrip(self):
        device = BlockDevice(block_size=16)
        offset = device.append(b"hello world")
        assert offset == 0
        assert device.read_at(0, 5) == b"hello"
        assert device.size == 11

    def test_file_backed_roundtrip(self, tmp_path):
        path = tmp_path / "data.bin"
        with BlockDevice(path, block_size=8, create=True) as device:
            device.append(b"0123456789")
            device.flush()
            assert device.path == str(path)
        with BlockDevice(path, block_size=8) as device:
            assert device.read_at(2, 4) == b"2345"

    def test_block_accounting_counts_spanned_blocks(self):
        device = BlockDevice(block_size=4)
        device.append(b"abcdefgh")  # spans 2 blocks
        assert device.stats.blocks_written == 2
        device.read_at(2, 4)  # bytes 2..5 span blocks 0 and 1
        assert device.stats.blocks_read == 2

    def test_sequential_vs_random_reads(self):
        device = BlockDevice(block_size=4)
        device.append(b"abcdefghij")
        device.read_at(0, 4)
        device.read_at(4, 4)  # contiguous with the previous read
        assert device.stats.random_seeks == 0
        device.read_at(0, 2)  # jump back
        assert device.stats.random_seeks == 1

    def test_reset_sequential_cursor_forces_seek(self):
        device = BlockDevice(block_size=4)
        device.append(b"abcdefgh")
        device.read_at(0, 4)
        device.reset_sequential_cursor()
        device.read_at(4, 4)
        assert device.stats.random_seeks == 1

    def test_short_read_raises(self):
        device = BlockDevice(block_size=4)
        device.append(b"abc")
        with pytest.raises(StorageError):
            device.read_at(0, 10)

    def test_negative_offset_rejected(self):
        device = BlockDevice(block_size=4)
        with pytest.raises(StorageError):
            device.read_at(-1, 2)
        with pytest.raises(StorageError):
            device.write_at(-1, b"x")

    def test_write_at_overwrites(self):
        device = BlockDevice(block_size=4)
        device.append(b"aaaa")
        device.write_at(1, b"bb")
        assert device.read_at(0, 4) == b"abba"

    def test_invalid_block_size_rejected(self):
        with pytest.raises(StorageError):
            BlockDevice(block_size=0)

    def test_num_blocks(self):
        device = BlockDevice(block_size=4)
        assert device.num_blocks() == 0
        device.append(b"abcde")
        assert device.num_blocks() == 2

    def test_shared_stats_object(self):
        stats = IOStats()
        device = BlockDevice(block_size=4, stats=stats)
        device.append(b"abcd")
        assert stats.bytes_written == 4
