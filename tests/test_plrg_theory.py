"""Unit tests for the PLRG performance model (Lemma 1, Propositions 2 & 5, Lemmas 3 & 6)."""

from __future__ import annotations

import pytest

from repro.analysis.plrg_theory import (
    PLRGTheory,
    greedy_expected_degree_count,
    greedy_expected_size,
    one_k_swap_expected_gain,
    one_k_swap_expected_size,
)
from repro.analysis.upper_bound import independence_upper_bound
from repro.core.greedy import greedy_mis
from repro.errors import AnalysisError
from repro.graphs.plrg import PLRGParameters, plrg_graph


def _theory(num_vertices: int = 50_000, beta: float = 2.1) -> PLRGTheory:
    return PLRGTheory(PLRGParameters.from_vertex_count(num_vertices, beta))


class TestGreedyEstimate:
    def test_degree_counts_are_non_negative_and_bounded(self):
        theory = _theory()
        for degree in (1, 2, 3, 5, 10):
            count = theory.greedy_degree_count(degree)
            assert 0.0 <= count <= theory.vertices_with_degree(degree) + 1

    def test_invalid_degree_rejected(self):
        theory = _theory()
        with pytest.raises(AnalysisError):
            greedy_expected_degree_count(theory.alpha, theory.beta, 0)

    def test_degree_above_maximum_contributes_nothing(self):
        theory = _theory()
        assert greedy_expected_degree_count(theory.alpha, theory.beta, theory.max_degree + 5) == 0.0

    def test_most_degree_one_vertices_are_kept(self):
        theory = _theory()
        kept = theory.greedy_degree_count(1)
        total = theory.vertices_with_degree(1)
        assert kept / total > 0.85

    def test_total_size_is_below_vertex_count(self):
        theory = _theory()
        assert 0 < theory.greedy_size() < theory.num_vertices

    def test_integral_approximation_matches_exact_sum(self):
        # For a degree class large enough to trigger the integral path,
        # re-derive the exact term-by-term sum here and compare.
        import math

        from repro.analysis import plrg_theory as theory_module
        from repro.graphs.plrg import plrg_max_degree, zeta_partial

        params = PLRGParameters.from_vertex_count(60_000, 2.1)
        alpha, beta, degree = params.alpha, params.beta, 1
        delta = plrg_max_degree(alpha, beta)
        e_alpha = math.exp(alpha)
        total_stubs = e_alpha * zeta_partial(beta - 1.0, delta)
        later_stubs = e_alpha * (
            zeta_partial(beta - 1.0, delta) - zeta_partial(beta - 1.0, degree - 1)
        )
        class_size = int(math.floor(e_alpha / degree**beta))
        assert class_size > theory_module._EXACT_SUM_LIMIT  # integral path used
        exact = sum(
            min(1.0, max(0.0, (later_stubs - degree * x) / total_stubs)) ** degree
            for x in range(1, class_size + 1)
        )
        approximated = greedy_expected_degree_count(alpha, beta, degree)
        assert approximated == pytest.approx(exact, rel=0.01)

    def test_bigger_beta_means_smaller_greedy_set(self):
        # The counter-intuitive Table 9 trend: with |V| fixed, larger beta
        # yields a *smaller* independent set.
        sizes = [
            greedy_expected_size(PLRGParameters.from_vertex_count(100_000, beta).alpha, beta)
            for beta in (1.8, 2.2, 2.6)
        ]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_estimate_matches_measured_greedy_within_two_percent(self):
        params = PLRGParameters.from_vertex_count(8_000, 2.1)
        graph = plrg_graph(params, seed=0)
        measured = greedy_mis(graph).size
        estimated = greedy_expected_size(params.alpha, params.beta)
        assert estimated == pytest.approx(measured, rel=0.02)

    def test_table2_ratio_band(self):
        # Table 2: the greedy estimate divided by the Algorithm-5 bound is
        # above 0.95 across the beta sweep (the paper reports ~0.983-0.988
        # against its averaged optimal bound at |V| = 10M).
        for beta in (1.8, 2.2, 2.6):
            params = PLRGParameters.from_vertex_count(6_000, beta)
            graph = plrg_graph(params, seed=1)
            bound = independence_upper_bound(graph)
            estimate = greedy_expected_size(params.alpha, params.beta)
            assert estimate / bound > 0.9
            assert estimate / bound < 1.05


class TestSwapEstimates:
    def test_swap_gain_is_non_negative_and_small(self):
        theory = _theory()
        gain = theory.one_k_gain()
        assert gain >= 0.0
        # The paper reports a ~1-1.5% improvement over greedy.
        assert gain <= 0.1 * theory.num_vertices

    def test_one_k_size_is_greedy_plus_gain(self):
        theory = _theory()
        assert theory.one_k_size() == pytest.approx(
            theory.greedy_size() + theory.one_k_gain()
        )

    def test_gain_helper_functions_agree(self):
        params = PLRGParameters.from_vertex_count(20_000, 2.2)
        assert one_k_swap_expected_size(params.alpha, params.beta) == pytest.approx(
            greedy_expected_size(params.alpha, params.beta)
            + one_k_swap_expected_gain(params.alpha, params.beta)
        )

    def test_max_swap_degree_is_small(self):
        theory = _theory()
        d_s = theory.max_swap_degree()
        assert 2 <= d_s <= theory.max_degree
        # Lemma 3 yields a logarithmic bound, far below the maximum degree.
        assert d_s <= 10 * (theory.alpha + 1)

    def test_two_k_max_degree_at_least_one_k(self):
        theory = _theory()
        assert theory.two_k_max_degree() >= 2

    def test_sc_bound_is_below_vertex_count(self):
        theory = _theory()
        assert 0 <= theory.sc_vertices_bound() < theory.num_vertices

    def test_summary_contains_all_quantities(self):
        summary = _theory(20_000, 2.3).summary()
        expected_keys = {
            "alpha",
            "beta",
            "max_degree",
            "num_vertices",
            "num_edges",
            "greedy_size",
            "one_k_swap_size",
            "max_swap_degree",
            "two_k_max_degree",
            "sc_vertices_bound",
        }
        assert expected_keys == set(summary)
