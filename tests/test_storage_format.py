"""Unit tests for the binary adjacency-list file format."""

from __future__ import annotations

import pytest

from repro.errors import FormatError
from repro.storage import format as fmt


class TestHeader:
    def test_roundtrip(self):
        data = fmt.pack_header(123, 456)
        header = fmt.unpack_header(data)
        assert header.num_vertices == 123
        assert header.num_edges == 456
        assert header.version == fmt.FORMAT_VERSION

    def test_header_size_constant(self):
        assert len(fmt.pack_header(1, 1)) == fmt.HEADER_SIZE

    def test_bad_magic_rejected(self):
        data = bytearray(fmt.pack_header(1, 1))
        data[0] = 0x00
        with pytest.raises(FormatError):
            fmt.unpack_header(bytes(data))

    def test_truncated_header_rejected(self):
        with pytest.raises(FormatError):
            fmt.unpack_header(b"short")

    def test_unsupported_version_rejected(self):
        data = bytearray(fmt.pack_header(1, 1))
        data[8] = 99  # version field
        with pytest.raises(FormatError):
            fmt.unpack_header(bytes(data))

    def test_negative_counts_rejected(self):
        with pytest.raises(FormatError):
            fmt.pack_header(-1, 0)


class TestRecords:
    def test_roundtrip_with_neighbors(self):
        data = fmt.pack_record(7, [1, 2, 3])
        vertex, degree = fmt.unpack_record_header(data)
        assert vertex == 7
        assert degree == 3
        neighbors = fmt.unpack_neighbors(data[fmt.RECORD_HEADER_SIZE:], degree)
        assert neighbors == (1, 2, 3)

    def test_roundtrip_isolated_vertex(self):
        data = fmt.pack_record(4, [])
        vertex, degree = fmt.unpack_record_header(data)
        assert (vertex, degree) == (4, 0)
        assert fmt.unpack_neighbors(b"", 0) == ()

    def test_record_size_matches_packed_length(self):
        data = fmt.pack_record(0, [5, 6])
        assert len(data) == fmt.record_size(2)

    def test_vertex_id_too_large_rejected(self):
        with pytest.raises(FormatError):
            fmt.pack_record(2**32, [])

    def test_truncated_record_header_rejected(self):
        with pytest.raises(FormatError):
            fmt.unpack_record_header(b"\x00")

    def test_truncated_neighbors_rejected(self):
        with pytest.raises(FormatError):
            fmt.unpack_neighbors(b"\x00\x00", 1)


class TestFileSize:
    def test_file_size_formula(self):
        # 3 vertices, 2 edges: header + 3 record headers + 4 neighbour ids.
        expected = fmt.HEADER_SIZE + 3 * fmt.RECORD_HEADER_SIZE + 4 * fmt.VERTEX_ID_BYTES
        assert fmt.file_size_bytes(3, 2) == expected

    def test_file_size_of_empty_graph(self):
        assert fmt.file_size_bytes(0, 0) == fmt.HEADER_SIZE
