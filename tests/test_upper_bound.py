"""Unit tests for Algorithm 5, the independence-number upper bound."""

from __future__ import annotations

import pytest

from repro.analysis.ratios import approximation_ratio, ratio_table
from repro.analysis.upper_bound import independence_upper_bound
from repro.baselines.exact import independence_number
from repro.core.greedy import greedy_mis
from repro.core.two_k_swap import two_k_swap
from repro.errors import AnalysisError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.plrg import plrg_graph_with_vertex_count


class TestUpperBound:
    def test_bound_is_exact_on_stars(self):
        assert independence_upper_bound(star_graph(7)) == 7

    def test_bound_on_empty_graph_is_vertex_count(self):
        assert independence_upper_bound(empty_graph(9)) == 9

    def test_bound_is_at_least_the_exact_optimum(self, known_optimum_graph):
        graph, optimum = known_optimum_graph
        assert independence_upper_bound(graph) >= optimum

    def test_bound_dominates_exact_on_random_graphs(self, small_random_graph):
        assert independence_upper_bound(small_random_graph) >= independence_number(
            small_random_graph
        )

    def test_bound_dominates_heuristics_on_larger_graphs(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(400, 1_400, seed=seed)
            bound = independence_upper_bound(graph)
            assert bound >= two_k_swap(graph).size

    def test_bound_never_exceeds_vertex_count(self):
        graph = plrg_graph_with_vertex_count(2_000, 2.1, seed=1)
        assert independence_upper_bound(graph) <= graph.num_vertices

    def test_bound_is_tight_on_power_law_graphs(self):
        # The Table 2 / Figure 8 setting: the greedy size should already be
        # within a few percent of the bound on PLRG graphs.
        graph = plrg_graph_with_vertex_count(3_000, 2.1, seed=2)
        bound = independence_upper_bound(graph)
        greedy = greedy_mis(graph)
        assert greedy.size / bound > 0.9

    def test_order_changes_bound_but_not_validity(self, small_random_graph):
        optimum = independence_number(small_random_graph)
        assert independence_upper_bound(small_random_graph, order="degree") >= optimum
        assert independence_upper_bound(small_random_graph, order="id") >= optimum


class TestRatioHelpers:
    def test_ratio_with_explicit_bound(self):
        assert approximation_ratio(50, upper_bound=100) == pytest.approx(0.5)

    def test_ratio_from_graph(self):
        graph = complete_bipartite_graph(3, 5)
        result = greedy_mis(graph)
        ratio = approximation_ratio(result, graph=graph)
        assert 0 < ratio <= 1.0

    def test_ratio_requires_a_bound_or_graph(self):
        with pytest.raises(AnalysisError):
            approximation_ratio(10)

    def test_ratio_rejects_non_positive_bound(self):
        with pytest.raises(AnalysisError):
            approximation_ratio(10, upper_bound=0)

    def test_ratio_table(self):
        graph = cycle_graph(12)
        results = {"greedy": greedy_mis(graph), "two_k": two_k_swap(graph)}
        table = ratio_table(results, graph=graph)
        assert set(table) == {"greedy", "two_k"}
        assert all(0 < value <= 1.0 for value in table.values())

    def test_ratio_table_requires_bound_or_graph(self):
        with pytest.raises(AnalysisError):
            ratio_table({"greedy": 5})

    def test_complete_graph_bound_is_loose_but_valid(self):
        # Algorithm 5 charges max(N, 1) per star, so K_6 gets a bound of 5
        # even though the optimum is 1 — the ratio is well defined but small.
        graph = complete_graph(6)
        result = greedy_mis(graph)
        assert independence_upper_bound(graph) == 5
        assert approximation_ratio(result, graph=graph) == pytest.approx(1 / 5)

    def test_path_graph_ratio(self):
        graph = path_graph(20)
        result = greedy_mis(graph)
        assert approximation_ratio(result, graph=graph) >= 0.9
