"""Solver-service tests: job store, worker pool, crash recovery, cache.

The acceptance drill of the service subsystem:

* jobs run concurrently across worker processes;
* a killed worker's job resumes after restart with the bit-identical
  independent set, round telemetry and cumulative ``IOStats`` (the kill
  is exercised both as a real ``SIGKILL`` and at *every* checkpoint
  write via the deterministic ``interrupt_after`` knob);
* a whole-service crash recovers on restart from the on-disk store;
* a resubmitted identical job is served from the digest-keyed result
  cache with no solver work, returning the identical ``MISResult``.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.core.solver import solve_mis
from repro.errors import JobNotFoundError, JobStateError, ServiceError
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.pipeline.context import ExecutionContext
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.spec import RunSpec
from repro.service import (
    JobStore,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    SolverService,
    cache_key,
    file_digest,
)
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file

DRAIN_TIMEOUT = 120.0


@pytest.fixture(scope="module")
def adjacency_path(tmp_path_factory):
    graph = erdos_renyi_gnm(300, 900, seed=11)
    path = str(tmp_path_factory.mktemp("graphs") / "g.adj")
    write_adjacency_file(graph, path).close()
    return path


@pytest.fixture(scope="module")
def slow_adjacency_path(tmp_path_factory):
    """A graph big enough that a python-backend job runs for ~a second."""

    graph = plrg_graph_with_vertex_count(50_000, 2.0, seed=5)
    path = str(tmp_path_factory.mktemp("graphs") / "slow.adj")
    write_adjacency_file(graph, path).close()
    return path


def make_spec(input_path, pipeline="two_k_swap", **kwargs):
    payload = {"pipeline": pipeline, "input": input_path, "max_rounds": 2}
    payload.update(kwargs)
    return RunSpec.from_dict(payload)


def fast_config(**overrides):
    defaults = dict(
        workers=2,
        poll_interval_seconds=0.02,
        checkpoint_every_seconds=None,
        max_restarts=100,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def reference_result(spec: RunSpec):
    return solve_mis(
        AdjacencyFileReader(spec.input),
        pipeline=spec.pipeline.name,
        backend=spec.backend,
        max_rounds=spec.max_rounds,
    )


def assert_results_identical(result, reference):
    assert result.independent_set == reference.independent_set
    assert result.rounds == reference.rounds
    assert result.io.as_dict() == reference.io.as_dict()
    assert result.initial_size == reference.initial_size
    assert result.memory_bytes == reference.memory_bytes


# ----------------------------------------------------------------------
# Job store
# ----------------------------------------------------------------------
class TestJobStore:
    def test_submit_creates_a_queued_record(self, adjacency_path, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        record = client.submit(make_spec(adjacency_path))
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.input_digest == file_digest(adjacency_path)
        fetched = client.status(record.job_id)
        assert fetched.to_dict() == record.to_dict()

    def test_unknown_job_raises_not_found(self, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        with pytest.raises(JobNotFoundError, match="no-such-job"):
            client.status("no-such-job")

    def test_corrupt_record_detected(self, adjacency_path, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        record = client.submit(make_spec(adjacency_path))
        path = client.store.record_path(record.job_id)
        document = json.loads(open(path).read())
        document["record"]["state"] = "done"  # tampered, checksum now wrong
        open(path, "w").write(json.dumps(document))
        with pytest.raises(ServiceError, match="checksum"):
            client.status(record.job_id)

    def test_list_orders_by_submission(self, adjacency_path, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        first = client.submit(make_spec(adjacency_path))
        second = client.submit(make_spec(adjacency_path, max_rounds=1))
        ids = [record.job_id for record in client.list()]
        assert ids == [first.job_id, second.job_id]

    def test_missing_input_rejected_at_submit(self, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        with pytest.raises(ServiceError, match="cannot digest"):
            client.submit(make_spec(str(tmp_path / "absent.adj")))

    def test_status_requires_an_existing_store(self, tmp_path):
        with pytest.raises(ServiceError, match="not a service directory"):
            ServiceClient(str(tmp_path / "nowhere"), create=False)


# ----------------------------------------------------------------------
# Digests and cache keys
# ----------------------------------------------------------------------
class TestCacheKeys:
    def test_key_ignores_persistence_knobs(self, adjacency_path):
        digest = file_digest(adjacency_path)
        base = make_spec(adjacency_path)
        persisted = make_spec(
            adjacency_path,
            checkpoint="somewhere.ck",
            resume=True,
            checkpoint_every_seconds=5.0,
        )
        assert cache_key(base, digest) == cache_key(persisted, digest)

    def test_key_tracks_solver_relevant_fields(self, adjacency_path):
        digest = file_digest(adjacency_path)
        base = make_spec(adjacency_path)
        assert cache_key(base, digest) != cache_key(
            make_spec(adjacency_path, max_rounds=1), digest
        )
        assert cache_key(base, digest) != cache_key(
            make_spec(adjacency_path, pipeline="one_k_swap"), digest
        )
        assert cache_key(base, digest) != cache_key(
            make_spec(adjacency_path, backend="python"), digest
        )
        assert cache_key(base, digest) != cache_key(base, digest + "0")

    def test_digest_is_content_addressed(self, adjacency_path, tmp_path):
        copy = str(tmp_path / "copy.adj")
        with open(adjacency_path, "rb") as src, open(copy, "wb") as dst:
            dst.write(src.read())
        assert file_digest(copy) == file_digest(adjacency_path)
        with open(copy, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\xff")
        assert file_digest(copy) != file_digest(adjacency_path)


# ----------------------------------------------------------------------
# Execution, concurrency, cache
# ----------------------------------------------------------------------
class TestServiceExecution:
    def test_single_job_matches_direct_solve(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec = make_spec(adjacency_path)
        record = client.submit(spec)
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "done"
        assert record.attempts == 1
        assert not record.cache_hit
        assert record.stages  # per-stage telemetry copied into the record
        assert_results_identical(client.result(record.job_id), reference_result(spec))

    def test_three_jobs_two_backends_one_cache_hit(self, adjacency_path, tmp_path):
        """The acceptance drill's job mix, through the library API."""

        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        numpy_job = client.submit(make_spec(adjacency_path, backend="numpy"))
        python_job = client.submit(make_spec(adjacency_path, backend="python"))
        duplicate = client.submit(make_spec(adjacency_path, backend="numpy"))
        service = SolverService(root, fast_config(workers=2))
        try:
            service.run_once()
            # Both distinct jobs start immediately on the two worker slots;
            # the duplicate is held back by in-flight dedup.
            assert len(service._workers) == 2
            assert client.status(duplicate.job_id).state == "queued"
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()

        numpy_record = client.status(numpy_job.job_id)
        python_record = client.status(python_job.job_id)
        duplicate_record = client.status(duplicate.job_id)
        assert numpy_record.state == "done" and not numpy_record.cache_hit
        assert python_record.state == "done" and not python_record.cache_hit
        # The duplicate never ran a worker: pure cache hit.
        assert duplicate_record.state == "done"
        assert duplicate_record.cache_hit
        assert duplicate_record.attempts == 0
        # Both backends agree (the solver guarantee), and the cached result
        # is the identical MISResult of the job it duplicates.
        numpy_result = client.result(numpy_job.job_id)
        python_result = client.result(python_job.job_id)
        duplicate_result = client.result(duplicate.job_id)
        assert numpy_result.independent_set == python_result.independent_set
        assert duplicate_result == numpy_result

    def test_resubmission_after_drain_is_a_cache_hit(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec = make_spec(adjacency_path)
        original = client.submit(spec)
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
            resubmitted = client.submit(spec)
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(resubmitted.job_id)
        assert record.state == "done"
        assert record.cache_hit
        assert record.attempts == 0
        assert client.result(resubmitted.job_id) == client.result(original.job_id)
        assert ResultCache(client.store.cache_dir).size() == 1

    def test_vanished_input_fails_without_retry(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        doomed = str(tmp_path / "doomed.adj")
        with open(adjacency_path, "rb") as src, open(doomed, "wb") as dst:
            dst.write(src.read())
        client = ServiceClient(root)
        record = client.submit(make_spec(doomed))
        os.remove(doomed)
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "failed"
        assert record.attempts == 1  # a job error is not retried
        assert "cannot digest input" in record.error

    def test_edited_input_fails_instead_of_poisoning_the_cache(
        self, adjacency_path, tmp_path
    ):
        """The cache key is pinned to the submit-time content; a job whose
        input changed before execution must fail, not cache a wrong result
        under the original digest."""

        root = str(tmp_path / "svc")
        mutable = str(tmp_path / "mutable.adj")
        with open(adjacency_path, "rb") as src, open(mutable, "wb") as dst:
            dst.write(src.read())
        client = ServiceClient(root)
        record = client.submit(make_spec(mutable))
        # Replace the input with a different (valid) graph post-submit.
        other = erdos_renyi_gnm(120, 300, seed=99)
        write_adjacency_file(other, mutable).close()
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "failed"
        assert "digest mismatch" in record.error
        assert ResultCache(client.store.cache_dir).size() == 0

    def test_update_expect_states_never_reverts_terminal_records(
        self, adjacency_path, tmp_path
    ):
        client = ServiceClient(str(tmp_path / "svc"))
        record = client.submit(make_spec(adjacency_path))
        client.store.update(record.job_id, state="cancelled")
        unchanged = client.store.update(
            record.job_id, expect_states=("queued",), state="done"
        )
        assert unchanged.state == "cancelled"
        assert client.status(record.job_id).state == "cancelled"

    def test_memory_budget_error_fails_the_job(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec = RunSpec.from_dict(
            {
                "pipeline": {
                    "name": "comparator",
                    "stages": [{"stage": "local_search"}],
                },
                "input": adjacency_path,
                "memory_limit_bytes": 64,
            }
        )
        record = client.submit(spec)
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "failed"
        assert "bytes" in record.error

    def test_result_of_unfinished_job_rejected(self, adjacency_path, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        record = client.submit(make_spec(adjacency_path))
        with pytest.raises(JobStateError, match="queued"):
            client.result(record.job_id)


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
def _checkpoint_writes_of(spec: RunSpec, tmp_path) -> int:
    """How many checkpoint writes an uninterrupted run of ``spec`` makes."""

    reader = AdjacencyFileReader(spec.input)
    engine = PipelineEngine(
        spec.pipeline,
        max_rounds=spec.max_rounds,
        checkpoint_path=str(tmp_path / "probe.ck"),
    )
    engine.run(ExecutionContext.create(reader, backend=spec.backend))
    reader.close()
    return engine._checkpoint_writes


class TestCrashRecovery:
    def test_worker_killed_at_every_checkpoint_boundary_and_round(
        self, adjacency_path, tmp_path
    ):
        """Sweep the deterministic kill over every interruption point.

        ``interrupt_after=k`` makes the worker die right after its k-th
        checkpoint write on *every* attempt, so the job crosses several
        crash/resume cycles before finishing — at stage boundaries and
        mid-round-loop alike.  Every variant must converge to the
        bit-identical result of an uninterrupted solve.
        """

        spec = make_spec(adjacency_path)
        reference = reference_result(spec)
        total_writes = _checkpoint_writes_of(spec, tmp_path)
        assert total_writes >= 3  # boundaries + at least one round write
        for interrupt_after in range(1, total_writes + 2):
            root = str(tmp_path / f"svc-{interrupt_after}")
            client = ServiceClient(root)
            record = client.submit(spec, interrupt_after=interrupt_after)
            service = SolverService(root, fast_config(workers=1))
            try:
                service.drain(timeout_seconds=DRAIN_TIMEOUT)
            finally:
                service.stop()
            record = client.status(record.job_id)
            assert record.state == "done", (interrupt_after, record.error)
            if interrupt_after <= total_writes:
                assert record.attempts > 1  # it really crashed and resumed
            assert_results_identical(client.result(record.job_id), reference)

    def test_sigkilled_worker_resumes_bit_identically(
        self, slow_adjacency_path, tmp_path
    ):
        """A real SIGKILL mid-run: the restarted job must finish identically."""

        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec = make_spec(
            slow_adjacency_path, backend="python", checkpoint_every_seconds=0.001
        )
        record = client.submit(spec)
        service = SolverService(root, fast_config(workers=1))
        try:
            service.run_once()
            running = client.status(record.job_id)
            assert running.state == "running"
            time.sleep(0.15)  # let it get past some checkpoint writes
            os.kill(running.pid, signal.SIGKILL)
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "done"
        assert record.attempts == 2
        assert_results_identical(client.result(record.job_id), reference_result(spec))

    def test_whole_service_crash_recovers_on_restart(
        self, slow_adjacency_path, tmp_path
    ):
        """Kill the worker *and* abandon the daemon; a fresh service resumes."""

        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec = make_spec(
            slow_adjacency_path, backend="python", checkpoint_every_seconds=0.001
        )
        record = client.submit(spec)
        first_daemon = SolverService(root, fast_config(workers=1))
        first_daemon.run_once()
        running = client.status(record.job_id)
        assert running.state == "running"
        time.sleep(0.15)
        os.kill(running.pid, signal.SIGKILL)
        # The first daemon dies too: it never requeues anything, and all
        # that survives is the on-disk store.  (In production the killed
        # worker is reaped by init; in-process we must reap the zombie
        # ourselves or its pid still looks alive to the next daemon.)
        for process in first_daemon._workers.values():
            process.join()
        first_daemon._workers.clear()
        del first_daemon

        second_daemon = SolverService(root, fast_config(workers=1))
        # Recovery already requeued the orphaned running job.
        assert client.status(record.job_id).state == "queued"
        try:
            second_daemon.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            second_daemon.stop()
        record = client.status(record.job_id)
        assert record.state == "done"
        assert record.attempts == 2
        assert_results_identical(client.result(record.job_id), reference_result(spec))

    def test_max_restarts_caps_crash_loops(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        record = client.submit(make_spec(adjacency_path), interrupt_after=1)
        service = SolverService(root, fast_config(workers=1, max_restarts=0))
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "failed"
        assert "crashed" in record.error


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_queued_job(self, adjacency_path, tmp_path):
        client = ServiceClient(str(tmp_path / "svc"))
        record = client.submit(make_spec(adjacency_path))
        cancelled = client.cancel(record.job_id)
        assert cancelled.state == "cancelled"
        with pytest.raises(JobStateError, match="cancel"):
            client.cancel(record.job_id)

    def test_cancel_running_job_stops_the_worker(
        self, slow_adjacency_path, tmp_path
    ):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        record = client.submit(make_spec(slow_adjacency_path, backend="python"))
        service = SolverService(root, fast_config(workers=1))
        try:
            service.run_once()
            running = client.status(record.job_id)
            assert running.state == "running"
            client.cancel(record.job_id)
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "cancelled"
        assert record.pid is None


# ----------------------------------------------------------------------
# Policies and batch submission
# ----------------------------------------------------------------------
class TestPolicies:
    def test_service_default_checkpoint_cadence_is_stamped(
        self, adjacency_path, tmp_path
    ):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        defaulted = client.submit(make_spec(adjacency_path))
        explicit = client.submit(
            make_spec(adjacency_path, max_rounds=1, checkpoint_every_seconds=5.0)
        )
        service = SolverService(
            root, fast_config(checkpoint_every_seconds=123.0)
        )
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        assert client.status(defaulted.job_id).checkpoint_every_seconds == 123.0
        assert client.status(explicit.job_id).checkpoint_every_seconds == 5.0

    def test_batch_submit_directory(self, adjacency_path, tmp_path):
        config_dir = tmp_path / "specs"
        config_dir.mkdir()
        for name, pipeline in (("a.json", "greedy"), ("b.json", "one_k_swap")):
            (config_dir / name).write_text(
                json.dumps(
                    {"pipeline": pipeline, "input": adjacency_path, "max_rounds": 2}
                )
            )
        (config_dir / "notes.txt").write_text("ignored")
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        submitted = client.submit_directory(str(config_dir))
        assert [os.path.basename(path) for path, _ in submitted] == [
            "a.json",
            "b.json",
        ]
        service = SolverService(root, fast_config())
        try:
            records = service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        assert [record.state for record in records] == ["done", "done"]

    def test_store_survives_restart_with_no_open_jobs(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        client.submit(make_spec(adjacency_path))
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        # A restarted service over a fully-drained store is a no-op.
        restarted = SolverService(root, fast_config())
        assert not restarted.has_open_jobs()


# ----------------------------------------------------------------------
# Binary CSR inputs and cache eviction
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def binary_path(adjacency_path, tmp_path_factory):
    from repro.storage.converters import adjacency_to_binary

    path = str(tmp_path_factory.mktemp("graphs") / "g.csr")
    adjacency_to_binary(adjacency_path, path)
    return path


class TestBinaryInputs:
    def test_input_digest_lifts_the_embedded_artifact_digest(
        self, adjacency_path, binary_path
    ):
        from repro.service import input_digest
        from repro.storage.binary_format import read_binary_header

        digest = input_digest(binary_path)
        assert digest == f"csr1:{read_binary_header(binary_path).digest}"
        # Text files keep the whole-file digest, unprefixed.
        assert input_digest(adjacency_path) == file_digest(adjacency_path)

    def test_corrupt_artifact_falls_back_to_byte_digest(
        self, binary_path, tmp_path
    ):
        from repro.service import input_digest

        damaged = str(tmp_path / "damaged.csr")
        with open(binary_path, "rb") as src:
            data = bytearray(src.read())
        data[70] ^= 0xFF  # flip a section byte; header stays valid
        with open(damaged, "wb") as dst:
            dst.write(bytes(data))
        size = os.path.getsize(damaged)
        with open(damaged, "r+b") as handle:
            handle.truncate(size - 1)  # now also truncated: header check fails
        digest = input_digest(damaged)
        assert not digest.startswith("csr1:")
        assert digest == file_digest(damaged)

    def test_binary_job_matches_text_job_bit_for_bit(
        self, adjacency_path, binary_path, tmp_path
    ):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        text_record = client.submit(make_spec(adjacency_path))
        binary_record = client.submit(make_spec(binary_path))
        assert text_record.cache_key != binary_record.cache_key  # different inputs
        assert binary_record.input_digest.startswith("csr1:")
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        text_result = client.result(text_record.job_id)
        binary_result = client.result(binary_record.job_id)
        assert_results_identical(binary_result, text_result)

    def test_edited_artifact_fails_instead_of_poisoning_the_cache(
        self, adjacency_path, tmp_path
    ):
        from repro.storage.converters import adjacency_to_binary

        root = str(tmp_path / "svc")
        artifact = str(tmp_path / "mutable.csr")
        adjacency_to_binary(adjacency_path, artifact)
        client = ServiceClient(root)
        record = client.submit(make_spec(artifact))
        # Regenerate the artifact from a different graph before any worker
        # starts: the digest pinned at submit no longer matches.
        other = str(tmp_path / "other.adj")
        write_adjacency_file(erdos_renyi_gnm(120, 300, seed=99), other).close()
        adjacency_to_binary(other, artifact)
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        record = client.status(record.job_id)
        assert record.state == "failed"
        assert "digest mismatch" in record.error
        assert ResultCache(client.store.cache_dir).size() == 0


class TestCacheEviction:
    def _fill(self, cache, keys, payload_bytes=200):
        for index, key in enumerate(keys):
            cache.put(key, {"n": index}, {"pad": "x" * payload_bytes})
            os.utime(cache.entry_path(key), (1_000_000 + index, 1_000_000 + index))

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        self._fill(cache, ["a", "b", "c"])
        assert cache.evict() == []
        assert cache.size() == 3

    def test_evicts_oldest_mtime_first(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        self._fill(cache, ["a", "b", "c"])
        entry_bytes = os.path.getsize(cache.entry_path("a"))
        cache.limit_bytes = 2 * entry_bytes
        assert cache.evict() == ["a"]
        assert cache.get("a") is None
        assert cache.get("b") is not None and cache.get("c") is not None

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        self._fill(cache, ["a", "b", "c"])
        assert cache.get("a") is not None  # os.utime bumps "a" to newest
        entry_bytes = os.path.getsize(cache.entry_path("a"))
        cache.limit_bytes = 2 * entry_bytes
        assert cache.evict() == ["b"]
        assert cache.get("a") is not None

    def test_put_evicts_past_the_limit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), limit_bytes=0)
        cache.put("a", {}, {"pad": "x"})
        assert cache.size() == 0

    def test_total_bytes_tracks_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.total_bytes() == 0
        self._fill(cache, ["a", "b"])
        assert cache.total_bytes() == sum(
            os.path.getsize(cache.entry_path(k)) for k in ("a", "b")
        )

    def test_negative_limit_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match=">= 0"):
            ResultCache(str(tmp_path / "cache"), limit_bytes=-1)

    def test_service_sweeps_after_workers_finish(self, adjacency_path, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        client.submit(make_spec(adjacency_path))
        client.submit(make_spec(adjacency_path, backend="python"))
        service = SolverService(
            root, fast_config(workers=1, cache_limit_bytes=0)
        )
        try:
            records = service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        assert [record.state for record in records] == ["done", "done"]
        # Every entry was evicted as soon as its worker was reaped.
        assert service.cache.size() == 0

    def test_restarted_service_applies_a_tighter_limit(
        self, adjacency_path, tmp_path
    ):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        client.submit(make_spec(adjacency_path))
        service = SolverService(root, fast_config())
        try:
            service.drain(timeout_seconds=DRAIN_TIMEOUT)
        finally:
            service.stop()
        assert service.cache.size() == 1
        # recover() of the next daemon enforces the new budget.
        tighter = SolverService(root, fast_config(cache_limit_bytes=0))
        assert tighter.cache.size() == 0
