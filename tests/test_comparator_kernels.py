"""Backend parity for the in-memory comparator kernels (Tables 5-6).

The vectorized comparator passes — the (1,2)-swap local search and the
DynamicUpdate minimum-degree greedy — re-implement the reference loops
over the CSR arrays, so these tests pin them to the python backend on
randomized, power-law, regular, structured and cascade instances:
identical independent sets, identical iteration counts, and (for
DynamicUpdate) identical selection *sequences*.  The memory-limit error
paths of the wrappers are covered here too.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dynamic_update import dynamic_update_mis
from repro.baselines.local_search import local_search_mis
from repro.core.greedy import greedy_mis
from repro.core.kernels import get_backend, resolve_graph_backend
from repro.errors import MemoryBudgetError, SolverError, VertexError
from repro.graphs.cascade import cascade_initial_independent_set, cascade_swap_graph
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.validation.checks import is_maximal_independent_set


def assert_comparators_agree(graph, initial=None, max_iterations=100_000):
    """Run both comparator passes under both backends and compare everything."""

    python_backend = get_backend("python")
    numpy_backend = get_backend("numpy")

    python_order = python_backend.dynamic_update_pass(graph)
    numpy_order = numpy_backend.dynamic_update_pass(graph)
    assert python_order == numpy_order, "dynamic_update selection order"
    if graph.num_vertices:
        assert is_maximal_independent_set(graph, frozenset(python_order))

    if initial is None:
        initial = greedy_mis(graph).independent_set
    python_set, python_iters = python_backend.local_search_pass(
        graph, frozenset(initial), max_iterations
    )
    numpy_set, numpy_iters = numpy_backend.local_search_pass(
        graph, frozenset(initial), max_iterations
    )
    assert python_set == numpy_set, "local_search set"
    assert python_iters == numpy_iters, "local_search iterations"
    if graph.num_vertices and max_iterations > 0:
        assert is_maximal_independent_set(graph, python_set)


class TestParitySweep:
    def test_small_random_graphs(self):
        for seed in range(60):
            assert_comparators_agree(erdos_renyi_gnm(40, 70, seed=seed))

    def test_medium_random_graphs(self):
        for seed in range(10):
            assert_comparators_agree(erdos_renyi_gnm(250, 900, seed=seed))

    def test_plrg_instances(self):
        for seed in range(3):
            assert_comparators_agree(
                plrg_graph_with_vertex_count(2_500, 2.1, seed=seed)
            )

    def test_regular_instances(self):
        for seed in range(5):
            assert_comparators_agree(random_regular_graph(120, 3, seed=seed))

    def test_cascade_instances(self):
        for triples in (1, 3, 9):
            graph = cascade_swap_graph(triples)
            assert_comparators_agree(
                graph, initial=cascade_initial_independent_set(triples)
            )

    def test_structured_graphs(self):
        for graph in (
            empty_graph(0),
            empty_graph(7),
            path_graph(400),
            star_graph(25),
            complete_graph(12),
        ):
            assert_comparators_agree(graph)

    def test_empty_initial_set(self):
        for seed in range(10):
            assert_comparators_agree(
                erdos_renyi_gnm(80, 160, seed=seed), initial=frozenset()
            )

    def test_mid_sweep_insertions_wait_for_the_next_sweep(self):
        # Regression: after the sweep swaps 0 -> (1, 2), vertex 1 is newly
        # selected and gains two loose neighbours; the reference only
        # examines it in the *next* sweep (it is not in the sweep-start
        # snapshot), and the vectorized dirty-heap must not examine it
        # early either — doing so let 1 -> (3, 4) run before vertex 5's
        # turn and blocked 5's own swap, diverging the final sets.
        graph = Graph(
            8,
            [(0, 1), (0, 2), (0, 3), (0, 4), (1, 3), (1, 4), (5, 6), (5, 7), (3, 6)],
        )
        assert_comparators_agree(graph, initial=frozenset({0, 5}))

    def test_random_non_maximal_initial_sets(self):
        import random

        rng = random.Random(11)
        for trial in range(60):
            graph = erdos_renyi_gnm(25, 50, seed=trial)
            initial = set()
            for v in range(25):
                if rng.random() < 0.3 and all(
                    not graph.has_edge(v, u) for u in initial
                ):
                    initial.add(v)
            assert_comparators_agree(graph, initial=frozenset(initial))

    def test_iteration_caps(self):
        graph = erdos_renyi_gnm(150, 600, seed=6)
        for cap in (0, 1, 2, 7):
            assert_comparators_agree(graph, initial=frozenset(), max_iterations=cap)

    @settings(deadline=None, max_examples=40)
    @given(
        num_vertices=st.integers(min_value=1, max_value=60),
        probability=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**30),
    )
    def test_gnp_property(self, num_vertices, probability, seed):
        assert_comparators_agree(
            erdos_renyi_gnp(num_vertices, probability, seed=seed)
        )


class TestGraphBackendResolution:
    def test_numpy_backend_supports_ndarray_graphs(self):
        graph = erdos_renyi_gnm(30, 60, seed=1)
        assert resolve_graph_backend("numpy", graph).name == "numpy"
        assert resolve_graph_backend("python", graph).name == "python"

    def test_numpy_backend_falls_back_without_ndarray_csr(self):
        class _ListCSRGraph:
            """Stand-in for a graph built without numpy (array('q') CSR)."""

            def csr_arrays(self):
                return [0, 1, 2], [1, 0]

        assert resolve_graph_backend("numpy", _ListCSRGraph()).name == "python"

    def test_wrapper_backend_selection_is_bit_identical(self):
        graph = plrg_graph_with_vertex_count(1_500, 2.1, seed=2)
        dynamic = {
            backend: dynamic_update_mis(graph, backend=backend)
            for backend in ("python", "numpy")
        }
        assert (
            dynamic["python"].independent_set == dynamic["numpy"].independent_set
        )
        local = {
            backend: local_search_mis(graph, backend=backend)
            for backend in ("python", "numpy")
        }
        assert local["python"].independent_set == local["numpy"].independent_set
        assert local["python"].extras == local["numpy"].extras


class TestWrapperSemantics:
    def test_local_search_memory_limit_raises(self):
        graph = erdos_renyi_gnm(200, 600, seed=1)
        with pytest.raises(MemoryBudgetError):
            local_search_mis(graph, memory_limit_bytes=100)

    def test_local_search_memory_reported(self):
        graph = erdos_renyi_gnm(100, 300, seed=2)
        result = local_search_mis(graph)
        assert result.memory_bytes == (2 * 300 + 2 * 100) * 4 + 100
        # A sufficient limit must not raise.
        roomy = local_search_mis(graph, memory_limit_bytes=result.memory_bytes)
        assert roomy.size == result.size

    def test_dynamic_update_memory_limit_raises_per_backend(self):
        graph = erdos_renyi_gnm(200, 600, seed=1)
        for backend in ("python", "numpy"):
            with pytest.raises(MemoryBudgetError):
                dynamic_update_mis(graph, memory_limit_bytes=100, backend=backend)

    def test_local_search_zero_iterations_mutates_nothing(self):
        graph = star_graph(6)
        # {3} is independent but far from maximal; with a zero budget the
        # caller-supplied set must come back byte-identical (no greedy
        # maximalisation either).
        result = local_search_mis(graph, initial={3}, max_iterations=0)
        assert result.independent_set == frozenset({3})
        assert result.extras["iterations"] == 0.0
        assert result.initial_size == 1

    def test_local_search_negative_iterations_rejected(self):
        with pytest.raises(SolverError):
            local_search_mis(star_graph(3), max_iterations=-1)

    def test_local_search_rejects_out_of_range_initial(self):
        with pytest.raises(VertexError):
            local_search_mis(path_graph(4), initial={99})

    def test_dynamic_update_reports_built_size_as_initial(self):
        graph = erdos_renyi_gnm(120, 400, seed=3)
        result = dynamic_update_mis(graph)
        assert result.initial_size == result.size
        assert result.total_gain == 0

    def test_local_search_improves_cascade_initial(self):
        graph = cascade_swap_graph(6)
        initial = cascade_initial_independent_set(6)
        result = local_search_mis(graph, initial=initial)
        assert result.size >= len(initial)
        assert is_maximal_independent_set(graph, result.independent_set)
