"""Tests for the streaming dynamic MIS stack.

Covers the three layers of the stream refactor: the kernel-backend
``dynamic_apply_pass`` (python scalar reference vs numpy vectorized
waves, bit-identical), the maintainer's compaction and checkpoint state,
and the :class:`~repro.pipeline.stream.StreamSession` with its
kill/resume guarantees, including the ``repro-mis watch`` command.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.dynamic.maintainer import DynamicMISMaintainer
from repro.errors import PipelineInterrupted, StreamError
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.plrg import PLRGParameters, plrg_graph
from repro.pipeline.stream import (
    STREAM_VERSION,
    StreamSession,
    load_updates,
    updates_digest,
)
from repro.validation.checks import is_independent_set


def random_stream(rng, max_vertex, updates, insert_bias=0.65):
    insertions, deletions = [], []
    for _ in range(updates):
        u, v = rng.randrange(max_vertex), rng.randrange(max_vertex)
        if u == v:
            continue
        (insertions if rng.random() < insert_bias else deletions).append((u, v))
    return insertions, deletions


def gnm_graph(seed=1):
    return erdos_renyi_gnm(120, 360, seed=seed)


def plrg_test_graph(seed=2):
    return plrg_graph(PLRGParameters.from_vertex_count(120, 2.2), seed=seed)


def tightness(maintainer):
    tight = maintainer._tight
    return tight.tolist() if hasattr(tight, "tolist") else list(tight)


class TestBackendParity:
    """The numpy wave pass must be bit-identical to the scalar reference."""

    @pytest.mark.parametrize("make_graph", [gnm_graph, plrg_test_graph])
    def test_selected_set_journal_and_stats_match(self, make_graph):
        pytest.importorskip("numpy")

        def run(backend):
            rng = random.Random(23)
            maintainer = DynamicMISMaintainer(make_graph(), backend=backend)
            for _ in range(8):
                insertions, deletions = random_stream(rng, 140, 150)
                maintainer.apply_updates(insertions, deletions)
            maintainer.check_invariants()
            return maintainer

        scalar = run("python")
        waves = run("numpy")
        assert scalar.independent_set == waves.independent_set
        assert scalar.journal == waves.journal
        assert scalar.stats == waves.stats
        assert scalar.num_edges == waves.num_edges
        assert tightness(scalar) == tightness(waves)

    def test_parity_with_vertex_creation_beyond_capacity(self):
        pytest.importorskip("numpy")

        def run(backend):
            maintainer = DynamicMISMaintainer(gnm_graph(), backend=backend)
            maintainer.apply_updates(
                insertions=[(0, 500), (500, 501), (3, 700)],
                deletions=[(0, 500)],
            )
            return maintainer

        scalar, waves = run("python"), run("numpy")
        assert scalar.independent_set == waves.independent_set
        assert scalar.journal == waves.journal
        assert scalar.stats == waves.stats

    def test_conflict_dense_stream_parity(self):
        # Adversarial stream for the batched conflict-path eviction: a
        # large share of insertions land between two *selected* vertices,
        # so almost every batch carries eviction + re-saturation chains.
        # Sets, journals, stats and tightness must stay bit-identical.
        pytest.importorskip("numpy")

        def run(backend):
            rng = random.Random(77)
            maintainer = DynamicMISMaintainer(
                plrg_test_graph(seed=5), backend=backend
            )
            for _ in range(12):
                selected = sorted(maintainer.independent_set)
                insertions, deletions = [], []
                for _ in range(120):
                    if rng.random() < 0.7 and len(selected) >= 2:
                        u, v = rng.sample(selected, 2)
                    else:
                        u, v = rng.randrange(140), rng.randrange(140)
                        if u == v:
                            continue
                    if rng.random() < 0.8:
                        insertions.append((u, v))
                    else:
                        deletions.append((u, v))
                maintainer.apply_updates(insertions, deletions)
            maintainer.check_invariants()
            return maintainer

        scalar = run("python")
        waves = run("numpy")
        assert scalar.independent_set == waves.independent_set
        assert scalar.journal == waves.journal
        assert scalar.stats == waves.stats
        assert tightness(scalar) == tightness(waves)
        assert scalar.stats.evictions > 50  # the stream really is hostile
        assert waves.wave.batched_evictions > 0

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        updates=st.integers(min_value=1, max_value=220),
        batch=st.sampled_from([1, 7, 64, 256]),
        conflict=st.sampled_from([0.0, 0.4, 0.9]),
        kind=st.sampled_from(["gnm", "plrg"]),
    )
    def test_partitioner_parity_sweep(
        self, seed, updates, batch, conflict, kind
    ):
        # Property sweep over the wave partitioner: any stream shape,
        # batch size and conflict density must reproduce the scalar
        # reference exactly — selection sets AND journals.
        pytest.importorskip("numpy")
        graph = (
            gnm_graph(seed=seed % 5 + 1)
            if kind == "gnm"
            else plrg_test_graph(seed=seed % 5 + 1)
        )
        maintainers = {
            name: DynamicMISMaintainer(graph, backend=name)
            for name in ("python", "numpy")
        }
        rng = random.Random(seed)
        pending = []
        for _ in range(updates):
            selected = sorted(maintainers["python"].independent_set)
            if rng.random() < conflict and len(selected) >= 2:
                u, v = rng.sample(selected, 2)
            else:
                u, v = rng.randrange(140), rng.randrange(140)
                if u == v:
                    continue
            pending.append(("+" if rng.random() < 0.65 else "-", u, v))
            if len(pending) >= batch:
                insertions = [(u, v) for op, u, v in pending if op == "+"]
                deletions = [(u, v) for op, u, v in pending if op == "-"]
                for m in maintainers.values():
                    m.apply_updates(insertions, deletions)
                pending = []
                scalar, waves = maintainers["python"], maintainers["numpy"]
                assert scalar.independent_set == waves.independent_set
                assert scalar.journal == waves.journal
                assert scalar.stats == waves.stats
        maintainers["numpy"].check_invariants()

    def test_normalization_matches_the_scalar_reference(self):
        np = pytest.importorskip("numpy")
        from repro.core.kernels import get_backend
        from repro.core.kernels.python_backend import normalize_updates

        numpy_backend = get_backend("numpy")
        rng = random.Random(9)
        batch = []
        for _ in range(400):
            u, v = rng.randrange(40), rng.randrange(40)
            batch.append((u, v))  # self loops and duplicates included
        for strict in (False,) if any(u == v for u, v in batch) else (True,):
            assert numpy_backend.normalize_updates_pass(
                batch, strict=strict
            ) == normalize_updates(batch, strict=strict)
        clean = [(u, v) for u, v in batch if u != v]
        assert numpy_backend.normalize_updates_pass(
            clean, strict=True
        ) == normalize_updates(clean, strict=True)
        as_array = np.asarray(clean, dtype=np.int64)
        assert numpy_backend.normalize_updates_pass(
            as_array, strict=True
        ) == normalize_updates(clean, strict=True)

    @pytest.mark.parametrize(
        "bad", [[(1, 2, 3)], [(1,)], [("a", "b")], [(1, 2), (3, 4, 5)]]
    )
    def test_normalization_rejects_ragged_rows_like_the_reference(self, bad):
        # Malformed rows must not be silently mis-parsed by the
        # vectorized fast path; both backends raise the same way.
        pytest.importorskip("numpy")
        from repro.core.kernels import get_backend
        from repro.core.kernels.python_backend import normalize_updates

        numpy_backend = get_backend("numpy")
        try:
            expected = normalize_updates(bad, strict=True)
        except Exception as exc:  # noqa: BLE001 - mirrored exactly below
            with pytest.raises(type(exc)):
                numpy_backend.normalize_updates_pass(bad, strict=True)
        else:
            assert (
                numpy_backend.normalize_updates_pass(bad, strict=True)
                == expected
            )

    def test_unknown_backend_falls_back_for_list_maintainers(self, monkeypatch):
        # A maintainer whose state arrays are plain lists cannot take the
        # numpy pass; resolution silently falls back to the scalar one.
        import repro.dynamic.maintainer as module

        monkeypatch.setattr(module, "_np", None)
        maintainer = DynamicMISMaintainer(backend="numpy")
        maintainer.apply_updates(insertions=[(0, 1), (1, 2)])
        maintainer.check_invariants()
        assert maintainer.num_edges == 2


class TestBatchSemantics:
    def test_batch_duplicates_are_deduplicated(self):
        maintainer = DynamicMISMaintainer(gnm_graph())
        before = maintainer.stats.edges_inserted
        maintainer.apply_updates(
            insertions=[(0, 115), (115, 0), (0, 115), (0, 115)]
        )
        assert maintainer.stats.edges_inserted == before + 1

    def test_strict_mode_raises_a_typed_error_on_existing_edges(self):
        from repro.errors import DuplicateEdgeError

        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(10, 0, seed=1))
        maintainer.insert_edge(2, 3)
        with pytest.raises(DuplicateEdgeError) as excinfo:
            maintainer.apply_updates(insertions=[(2, 3)], exist_ok=False)
        assert excinfo.value.edge == (2, 3)
        # Matching single-edge behaviour:
        with pytest.raises(DuplicateEdgeError):
            maintainer.insert_edge(3, 2, exist_ok=False)
        # The default stays a no-op (pre-existing contract).
        maintainer.apply_updates(insertions=[(2, 3)])

    def test_strict_mode_rejects_nothing_applied(self):
        from repro.errors import DuplicateEdgeError

        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(10, 0, seed=1))
        maintainer.insert_edge(0, 1)
        edges_before = maintainer.num_edges
        with pytest.raises(DuplicateEdgeError):
            maintainer.apply_updates(
                insertions=[(5, 6), (0, 1)], exist_ok=False
            )
        assert maintainer.num_edges == edges_before


class TestDeleteVertex:
    def test_deleting_a_selected_vertex_resaturates_its_neighbourhood(self):
        from repro.graphs.generators import star_graph

        maintainer = DynamicMISMaintainer(star_graph(6), initial={0})
        maintainer.delete_vertex(0)
        maintainer.check_invariants()
        assert maintainer.num_vertices == 6
        assert maintainer.num_edges == 0
        # Every former leaf is now isolated and must have joined the set.
        assert maintainer.independent_set == frozenset(range(1, 7))
        assert maintainer.stats.vertices_deleted == 1

    def test_deleting_an_unknown_vertex_raises(self):
        from repro.errors import VertexError

        maintainer = DynamicMISMaintainer(gnm_graph())
        with pytest.raises(VertexError):
            maintainer.delete_vertex(10_000)
        maintainer.delete_vertex(5)
        with pytest.raises(VertexError):
            maintainer.delete_vertex(5)

    def test_random_vertex_deletions_keep_invariants(self):
        rng = random.Random(3)
        maintainer = DynamicMISMaintainer(gnm_graph())
        alive = set(range(120))
        for _ in range(40):
            victim = rng.choice(sorted(alive))
            alive.discard(victim)
            maintainer.delete_vertex(victim)
        maintainer.check_invariants()
        assert maintainer.num_vertices == 80


@st.composite
def update_streams(draw):
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    updates = draw(st.integers(min_value=1, max_value=250))
    threshold = draw(st.integers(min_value=1, max_value=200))
    kind = draw(st.sampled_from(["gnm", "plrg"]))
    return seed, updates, threshold, kind


class TestCompaction:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(stream=update_streams(), backend=st.sampled_from(["python", "numpy"]))
    def test_compaction_preserves_the_solution(self, stream, backend):
        pytest.importorskip("numpy")
        seed, updates, threshold, kind = stream
        graph = (
            gnm_graph(seed=seed % 7 + 1)
            if kind == "gnm"
            else plrg_test_graph(seed=seed % 7 + 1)
        )
        rng = random.Random(seed)
        maintainer = DynamicMISMaintainer(graph, backend=backend)
        insertions, deletions = random_stream(rng, 140, updates)
        maintainer.apply_updates(insertions, deletions)

        selected = maintainer.independent_set
        tight_before = tightness(maintainer)
        edges_before = maintainer.num_edges
        if maintainer.overlay_size >= threshold:
            maintainer.compact()
        maintainer.compact()

        assert maintainer.overlay_size == 0
        assert maintainer.independent_set == selected
        assert tightness(maintainer) == tight_before
        assert maintainer.num_edges == edges_before
        maintainer.check_invariants()
        current = maintainer.to_graph()
        selected = maintainer.independent_set
        assert is_independent_set(current, selected)
        # Maximality over the *present* vertices: to_graph() pads with
        # placeholder ids for vertices that were never created, which are
        # not the maintainer's to cover.
        for v in set(maintainer._present_ids()) - selected:
            assert any(w in selected for w in maintainer._neighbors(v))

    def test_threshold_triggers_compaction_inside_apply_updates(self):
        maintainer = DynamicMISMaintainer(gnm_graph(), compact_threshold=10)
        rng = random.Random(5)
        insertions, deletions = random_stream(rng, 140, 200)
        maintainer.apply_updates(insertions, deletions)
        assert maintainer.stats.compactions >= 1
        assert maintainer.overlay_size < 10
        maintainer.check_invariants()

    def test_updates_keep_working_after_compaction(self):
        def run(threshold):
            maintainer = DynamicMISMaintainer(
                gnm_graph(), compact_threshold=threshold
            )
            rng = random.Random(9)
            for _ in range(6):
                insertions, deletions = random_stream(rng, 140, 80)
                maintainer.apply_updates(insertions, deletions)
            maintainer.check_invariants()
            return maintainer

        compacting = run(threshold=25)
        plain = run(threshold=None)
        assert compacting.stats.compactions > 0
        assert plain.stats.compactions == 0
        assert compacting.independent_set == plain.independent_set
        assert compacting.num_edges == plain.num_edges
        assert compacting.journal == plain.journal


class TestUpdateFiles:
    def test_load_updates_parses_ops_and_comments(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("# header\n+ 1 2\n\n- 3 4   # trailing\n+ 5 6\n")
        assert load_updates(str(path)) == [
            ("+", 1, 2),
            ("-", 3, 4),
            ("+", 5, 6),
        ]

    @pytest.mark.parametrize("line", ["~ 1 2", "+ 1", "+ a b", "1 2"])
    def test_load_updates_rejects_malformed_lines(self, tmp_path, line):
        path = tmp_path / "u.txt"
        path.write_text(f"+ 0 1\n{line}\n")
        with pytest.raises(StreamError) as excinfo:
            load_updates(str(path))
        assert ":2:" in str(excinfo.value)

    def test_updates_digest_tracks_content(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("+ 1 2\n")
        b.write_text("+ 1 2\n")
        assert updates_digest(str(a)) == updates_digest(str(b))
        b.write_text("+ 1 3\n")
        assert updates_digest(str(a)) != updates_digest(str(b))

    def test_load_updates_reads_stdin(self, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("# streamed\n+ 1 2\n- 3 4\n")
        )
        assert load_updates("-") == [("+", 1, 2), ("-", 3, 4)]
        assert updates_digest("-") == "-"

    def test_load_updates_names_stdin_in_errors(self, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("+ 1 2\n? 9 9\n"))
        with pytest.raises(StreamError) as excinfo:
            load_updates("-")
        assert "<stdin>:2:" in str(excinfo.value)


@pytest.fixture
def stream_setup(tmp_path):
    graph = gnm_graph(seed=4)
    rng = random.Random(8)
    lines = []
    for _ in range(900):
        u, v = rng.randrange(140), rng.randrange(140)
        if u == v:
            continue
        lines.append(f"{'+' if rng.random() < 0.6 else '-'} {u} {v}")
    updates = tmp_path / "updates.txt"
    updates.write_text("\n".join(lines) + "\n")
    return graph, str(updates), str(tmp_path / "stream.ckpt")


class TestStreamSession:
    def test_session_drains_and_reports(self, stream_setup):
        graph, updates, _ = stream_setup
        session = StreamSession(
            graph, updates, batch_size=100, compact_threshold=300
        )
        reports = list(session.process())
        assert len(reports) == session.total_batches
        assert reports[-1].batch_index == session.total_batches - 1
        summary = session.result()
        assert summary["algorithm"] == "stream"
        assert summary["batches_applied"] == session.total_batches
        session.maintainer.check_invariants()

    def test_progress_hook_fires_per_batch(self, stream_setup):
        graph, updates, _ = stream_setup
        beats = []
        session = StreamSession(
            graph, updates, batch_size=100, progress=lambda: beats.append(1)
        )
        session.run()
        assert len(beats) == session.total_batches

    def test_interrupt_resume_is_bit_identical(self, stream_setup):
        graph, updates, checkpoint = stream_setup
        kwargs = dict(
            graph_digest="g",
            batch_size=64,
            compact_threshold=250,
        )
        baseline = StreamSession(graph, updates, **kwargs).run()

        with pytest.raises(PipelineInterrupted):
            StreamSession(
                graph,
                updates,
                checkpoint=checkpoint,
                interrupt_after=3,
                **kwargs,
            ).run()
        resumed = StreamSession(
            graph, updates, checkpoint=checkpoint, resume=True, **kwargs
        )
        assert resumed.cursor == 3
        result = resumed.run()
        for key in (
            "independent_set",
            "set_size",
            "stats",
            "num_edges",
            "batches_applied",
        ):
            assert result[key] == baseline[key]

    def test_resume_refuses_a_different_stream(self, stream_setup, tmp_path):
        graph, updates, checkpoint = stream_setup
        with pytest.raises(PipelineInterrupted):
            StreamSession(
                graph,
                updates,
                graph_digest="g",
                batch_size=64,
                checkpoint=checkpoint,
                interrupt_after=1,
            ).run()
        # Different batch size.
        with pytest.raises(StreamError):
            StreamSession(
                graph,
                updates,
                graph_digest="g",
                batch_size=65,
                checkpoint=checkpoint,
                resume=True,
            )
        # Different graph.
        with pytest.raises(StreamError):
            StreamSession(
                graph,
                updates,
                graph_digest="other",
                batch_size=64,
                checkpoint=checkpoint,
                resume=True,
            )
        # Different update file.
        other = tmp_path / "other.txt"
        other.write_text("+ 0 1\n")
        with pytest.raises(StreamError):
            StreamSession(
                graph,
                str(other),
                graph_digest="g",
                batch_size=64,
                checkpoint=checkpoint,
                resume=True,
            )

    def test_stream_version_is_pinned(self, stream_setup):
        graph, updates, checkpoint = stream_setup
        with pytest.raises(PipelineInterrupted):
            StreamSession(
                graph,
                updates,
                batch_size=64,
                checkpoint=checkpoint,
                interrupt_after=1,
            ).run()
        from repro.storage.checkpoint import read_checkpoint, write_checkpoint

        payload = read_checkpoint(checkpoint)
        payload["pins"]["stream_version"] = STREAM_VERSION + 1
        write_checkpoint(checkpoint, payload)
        with pytest.raises(StreamError):
            StreamSession(
                graph, updates, batch_size=64, checkpoint=checkpoint, resume=True
            )

    def test_stdin_streams_checkpoint_but_never_resume(
        self, stream_setup, monkeypatch
    ):
        import io

        graph, updates, checkpoint = stream_setup
        text = open(updates, "r", encoding="utf-8").read()
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        session = StreamSession(
            graph, "-", batch_size=100, checkpoint=checkpoint
        )
        summary = session.run()
        baseline = StreamSession(graph, updates, batch_size=100).run()
        summary.pop("elapsed_seconds")
        baseline.pop("elapsed_seconds")
        assert summary == baseline
        from repro.storage.checkpoint import read_checkpoint

        assert read_checkpoint(checkpoint)["pins"]["updates_digest"] == "-"
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        with pytest.raises(StreamError, match="stdin"):
            StreamSession(
                graph, "-", batch_size=100, checkpoint=checkpoint, resume=True
            )
        # A file-based session never matches the '-' pin either.
        with pytest.raises(StreamError, match="refusing to resume"):
            StreamSession(
                graph,
                updates,
                batch_size=100,
                checkpoint=checkpoint,
                resume=True,
            )

    def test_checkpoint_writes_drop_the_replayed_journal_prefix(
        self, stream_setup
    ):
        graph, updates, checkpoint = stream_setup
        plain = StreamSession(graph, updates, batch_size=100)
        plain.run()
        assert plain.maintainer.journal  # un-checkpointed sessions keep it
        durable = StreamSession(
            graph, updates, batch_size=100, checkpoint=checkpoint
        )
        durable.run()
        # Every batch checkpoints, and each write retires the journal
        # entries it made durable — nothing is left in memory.
        assert durable.maintainer.journal == []
        assert (
            sorted(durable.maintainer.independent_set)
            == sorted(plain.maintainer.independent_set)
        )

    def test_batch_reports_carry_conflict_and_wave_deltas(self, stream_setup):
        pytest.importorskip("numpy")
        graph, updates, _ = stream_setup
        session = StreamSession(
            graph, updates, batch_size=100, backend="numpy"
        )
        reports = list(session.process())
        maintainer = session.maintainer
        assert (
            sum(r.evictions for r in reports) == maintainer.stats.evictions
        )
        assert (
            sum(r.sub_waves for r in reports) == maintainer.wave.sub_waves
        )
        assert (
            sum(r.scalar_fallbacks for r in reports)
            == maintainer.wave.scalar_fallbacks
        )
        summary = session.result()
        applied = (
            maintainer.stats.edges_inserted + maintainer.stats.edges_deleted
        )
        assert summary["conflict_density"] == (
            maintainer.stats.evictions / applied
        )
        report_keys = set(reports[0].summary())
        assert {"evictions", "sub_waves", "scalar_fallbacks"} <= report_keys


class TestJournalRing:
    def test_journal_limit_keeps_only_the_newest_entries(self):
        full = DynamicMISMaintainer(gnm_graph())
        ring = DynamicMISMaintainer(gnm_graph(), journal_limit=5)
        rng = random.Random(31)
        insertions, deletions = random_stream(rng, 140, 300)
        full.apply_updates(insertions, deletions)
        ring.apply_updates(insertions, deletions)
        assert len(full.journal) > 5
        assert len(ring.journal) == 5
        assert ring.journal == full.journal[-5:]
        ring.check_invariants()

    def test_journal_limit_zero_disables_journalling(self):
        ring = DynamicMISMaintainer(gnm_graph(), journal_limit=0)
        rng = random.Random(32)
        insertions, deletions = random_stream(rng, 140, 200)
        ring.apply_updates(insertions, deletions)
        assert ring.journal == []
        ring.check_invariants()


class TestWatchCommand:
    def write_graph(self, tmp_path):
        from repro.storage.adjacency_file import write_adjacency_file

        graph = gnm_graph(seed=6)
        path = tmp_path / "g.adj"
        write_adjacency_file(graph, str(path))
        return str(path)

    def write_updates(self, tmp_path):
        rng = random.Random(12)
        lines = []
        for _ in range(600):
            u, v = rng.randrange(140), rng.randrange(140)
            if u == v:
                continue
            lines.append(f"{'+' if rng.random() < 0.6 else '-'} {u} {v}")
        path = tmp_path / "updates.txt"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_watch_kill_and_resume_match_uninterrupted(self, tmp_path, capsys):
        graph_path = self.write_graph(tmp_path)
        updates_path = self.write_updates(tmp_path)
        checkpoint = str(tmp_path / "watch.ckpt")
        base_args = [
            "watch",
            graph_path,
            "--updates",
            updates_path,
            "--batch-size",
            "50",
            "--compact-threshold",
            "200",
            "--quiet",
            "--json",
        ]

        assert cli_main(base_args) == 0
        baseline = json.loads(capsys.readouterr().out)

        interrupted = base_args + [
            "--checkpoint",
            checkpoint,
            "--interrupt-after",
            "4",
        ]
        assert cli_main(interrupted) == 3
        capsys.readouterr()
        resumed = base_args + ["--checkpoint", checkpoint, "--resume"]
        assert cli_main(resumed) == 0
        result = json.loads(capsys.readouterr().out)
        baseline.pop("elapsed_seconds")
        result.pop("elapsed_seconds")
        # Wave counters are process telemetry, not checkpointed state:
        # the resumed process restarts them at zero.
        baseline.pop("wave")
        result.pop("wave")
        assert result == baseline

    def test_watch_validates_its_flags(self, tmp_path, capsys):
        graph_path = self.write_graph(tmp_path)
        updates_path = self.write_updates(tmp_path)
        assert (
            cli_main(
                ["watch", graph_path, "--updates", updates_path, "--resume"]
            )
            == 2
        )
        assert (
            cli_main(
                [
                    "watch",
                    graph_path,
                    "--updates",
                    updates_path,
                    "--batch-size",
                    "0",
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_watch_reads_updates_from_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        graph_path = self.write_graph(tmp_path)
        updates_path = self.write_updates(tmp_path)
        base = [
            "watch",
            graph_path,
            "--batch-size",
            "50",
            "--quiet",
            "--json",
        ]
        assert cli_main(base + ["--updates", updates_path]) == 0
        baseline = json.loads(capsys.readouterr().out)
        text = open(updates_path, "r", encoding="utf-8").read()
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        assert cli_main(base + ["--updates", "-"]) == 0
        piped = json.loads(capsys.readouterr().out)
        baseline.pop("elapsed_seconds")
        piped.pop("elapsed_seconds")
        assert piped == baseline

    def test_watch_refuses_resume_from_stdin(self, tmp_path, capsys):
        graph_path = self.write_graph(tmp_path)
        checkpoint = str(tmp_path / "w.ckpt")
        assert (
            cli_main(
                [
                    "watch",
                    graph_path,
                    "--updates",
                    "-",
                    "--checkpoint",
                    checkpoint,
                    "--resume",
                ]
            )
            == 2
        )
        assert "stdin" in capsys.readouterr().err

    def test_watch_reports_malformed_update_files(self, tmp_path, capsys):
        graph_path = self.write_graph(tmp_path)
        bad = tmp_path / "bad.txt"
        bad.write_text("? 1 2\n")
        assert cli_main(["watch", graph_path, "--updates", str(bad)]) == 2
        assert "expected" in capsys.readouterr().err


class TestServiceStreamJobs:
    """Stream jobs through the service worker pool — the top of the stack."""

    def setup_paths(self, tmp_path):
        from repro.storage.adjacency_file import write_adjacency_file

        graph = gnm_graph(seed=9)
        graph_path = tmp_path / "svc.adj"
        write_adjacency_file(graph, str(graph_path))
        rng = random.Random(21)
        lines = []
        for _ in range(700):
            u, v = rng.randrange(140), rng.randrange(140)
            if u == v:
                continue
            lines.append(f"{'+' if rng.random() < 0.6 else '-'} {u} {v}")
        updates_path = tmp_path / "svc_updates.txt"
        updates_path.write_text("\n".join(lines) + "\n")
        return graph, str(graph_path), str(updates_path)

    def make_spec(self, graph_path, updates_path):
        from repro.pipeline.spec import RunSpec

        return RunSpec.from_dict(
            {
                "pipeline": "two_k_swap",
                "input": graph_path,
                "updates": updates_path,
                "batch_size": 100,
                "compact_threshold": 400,
            }
        )

    def drain(self, root, client_spec, interrupt_after=None):
        from repro.service import ServiceClient, ServiceConfig, SolverService

        client = ServiceClient(root)
        record = client.submit(client_spec, interrupt_after=interrupt_after)
        service = SolverService(
            root,
            ServiceConfig(
                workers=1, poll_interval_seconds=0.02, max_restarts=100
            ),
        )
        try:
            service.drain(timeout_seconds=120.0)
        finally:
            service.stop()
        return client, client.status(record.job_id)

    def test_stream_job_matches_a_direct_session(self, tmp_path):
        graph, graph_path, updates_path = self.setup_paths(tmp_path)
        spec = self.make_spec(graph_path, updates_path)
        client, record = self.drain(str(tmp_path / "svc"), spec)
        assert record.state == "done"
        direct = StreamSession(
            graph, updates_path, batch_size=100, compact_threshold=400
        ).run()
        result = client.result(record.job_id)
        assert result.algorithm == "stream"
        assert result.independent_set == frozenset(direct["independent_set"])
        assert result.extras["batches_applied"] == direct["batches_applied"]

    def test_crash_drilled_stream_job_resumes_to_the_same_set(self, tmp_path):
        graph, graph_path, updates_path = self.setup_paths(tmp_path)
        spec = self.make_spec(graph_path, updates_path)
        client, record = self.drain(
            str(tmp_path / "svc"), spec, interrupt_after=2
        )
        # The worker died after every second batch checkpoint and was
        # requeued until the stream drained; the set is still the one an
        # uninterrupted session produces.
        assert record.state == "done"
        assert record.attempts > 1
        direct = StreamSession(
            graph, updates_path, batch_size=100, compact_threshold=400
        ).run()
        result = client.result(record.job_id)
        assert result.independent_set == frozenset(direct["independent_set"])

    def test_resubmitted_stream_job_is_a_cache_hit(self, tmp_path):
        _, graph_path, updates_path = self.setup_paths(tmp_path)
        spec = self.make_spec(graph_path, updates_path)
        root = str(tmp_path / "svc")
        client, record = self.drain(root, spec)
        assert record.state == "done" and not record.cache_hit
        _, duplicate = self.drain(root, spec)
        assert duplicate.state == "done"
        assert duplicate.cache_hit
        assert duplicate.attempts == 0
        assert client.result(duplicate.job_id) == client.result(record.job_id)
