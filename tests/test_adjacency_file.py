"""Unit tests for the adjacency-file writer and sequential-scan reader."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graphs.generators import erdos_renyi_gnm, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.storage import format as fmt
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file


@pytest.fixture
def sample_graph() -> Graph:
    return erdos_renyi_gnm(50, 120, seed=9)


class TestWriter:
    def test_written_size_matches_formula(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        assert device.size == fmt.file_size_bytes(
            sample_graph.num_vertices, sample_graph.num_edges
        )

    def test_write_to_disk_and_reopen(self, sample_graph, tmp_path):
        path = tmp_path / "graph.adj"
        device = write_adjacency_file(sample_graph, str(path))
        device.close()
        reader = AdjacencyFileReader(str(path))
        assert reader.num_vertices == sample_graph.num_vertices
        assert reader.num_edges == sample_graph.num_edges
        reader.close()

    def test_default_order_is_degree_ascending(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        reader = AdjacencyFileReader(device)
        degrees = [len(neighbors) for _, neighbors in reader.scan()]
        assert degrees == sorted(degrees)

    def test_explicit_id_order(self, sample_graph):
        device = write_adjacency_file(sample_graph, order=range(sample_graph.num_vertices))
        reader = AdjacencyFileReader(device)
        assert reader.scan_order() == list(range(sample_graph.num_vertices))

    def test_invalid_order_rejected(self, sample_graph):
        with pytest.raises(StorageError):
            write_adjacency_file(sample_graph, order=[0, 0, 1])

    def test_neighbor_lists_sorted_by_neighbor_degree(self):
        # Star + pendant chain: the centre's first neighbour should be the
        # lowest-degree one when sort_neighbors_by_degree is enabled.
        graph = Graph(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        device = write_adjacency_file(graph, order=range(5))
        reader = AdjacencyFileReader(device)
        records = dict(reader.scan())
        first_neighbor = records[0][0]
        assert graph.degree(first_neighbor) == min(
            graph.degree(v) for v in graph.neighbors(0)
        )


class TestReader:
    def test_roundtrip_preserves_graph(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        reader = AdjacencyFileReader(device)
        assert reader.to_graph() == sample_graph

    def test_scan_counts_one_sequential_scan(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        reader = AdjacencyFileReader(device)
        for _ in reader.scan():
            pass
        assert reader.stats.sequential_scans == 1
        for _ in reader.scan():
            pass
        assert reader.stats.sequential_scans == 2

    def test_scan_yields_every_vertex_once(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        reader = AdjacencyFileReader(device)
        vertices = [vertex for vertex, _ in reader.scan()]
        assert sorted(vertices) == list(range(sample_graph.num_vertices))

    def test_random_neighbor_lookup(self, sample_graph):
        device = write_adjacency_file(sample_graph)
        reader = AdjacencyFileReader(device)
        assert set(reader.neighbors(10)) == set(sample_graph.neighbors(10))
        assert reader.stats.random_vertex_lookups == 1
        assert reader.degree(10) == sample_graph.degree(10)

    def test_lookup_of_unknown_vertex_raises(self):
        graph = path_graph(4)
        device = write_adjacency_file(graph)
        reader = AdjacencyFileReader(device)
        with pytest.raises(StorageError):
            reader.neighbors(99)

    def test_context_manager_closes(self, sample_graph, tmp_path):
        path = tmp_path / "graph.adj"
        write_adjacency_file(sample_graph, str(path)).close()
        with AdjacencyFileReader(str(path)) as reader:
            assert reader.num_vertices == sample_graph.num_vertices

    def test_star_graph_records(self):
        graph = star_graph(4)
        device = write_adjacency_file(graph, order=range(5))
        reader = AdjacencyFileReader(device)
        records = dict(reader.scan())
        assert set(records[0]) == {1, 2, 3, 4}
        assert records[2] == (0,)
