"""Unit tests for the deterministic and random graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.cascade import (
    cascade_initial_independent_set,
    cascade_optimal_size,
    cascade_swap_graph,
)
from repro.graphs.generators import (
    caveman_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_graph,
    path_graph,
    random_bipartite_graph,
    random_regular_graph,
    star_graph,
)
from repro.validation.checks import is_independent_set


class TestDeterministicGenerators:
    def test_empty_graph(self):
        g = empty_graph(7)
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_path_graph_edge_count(self):
        assert path_graph(10).num_edges == 9
        assert path_graph(1).num_edges == 0

    def test_cycle_graph_edge_count(self):
        assert cycle_graph(8).num_edges == 8

    def test_cycle_graph_requires_three_vertices(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph_degrees(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_star_graph_rejects_negative(self):
        with pytest.raises(GraphError):
            star_graph(-1)

    def test_complete_graph_edge_count(self):
        assert complete_graph(6).num_edges == 15
        assert complete_graph(0).num_edges == 0

    def test_complete_bipartite_edge_count(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_vertices == 7
        assert g.num_edges == 12

    def test_complete_bipartite_rejects_negative(self):
        with pytest.raises(GraphError):
            complete_bipartite_graph(-1, 3)

    def test_grid_graph_edges(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_graph_rejects_bad_dimensions(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_caveman_graph_structure(self):
        g = caveman_graph(4, 3)
        assert g.num_vertices == 12
        # each clique has 3 edges, plus 4 ring links
        assert g.num_edges == 4 * 3 + 4

    def test_caveman_graph_rejects_bad_parameters(self):
        with pytest.raises(GraphError):
            caveman_graph(0, 3)

    def test_disjoint_union_offsets_vertices(self):
        g = disjoint_union(path_graph(3), complete_graph(3))
        assert g.num_vertices == 6
        assert g.num_edges == 2 + 3
        assert g.has_edge(3, 4)
        assert not g.has_edge(2, 3)


class TestRandomGenerators:
    def test_gnp_is_reproducible(self):
        g1 = erdos_renyi_gnp(50, 0.1, seed=5)
        g2 = erdos_renyi_gnp(50, 0.1, seed=5)
        assert g1 == g2

    def test_gnp_probability_bounds(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnp(10, 1.5)
        assert erdos_renyi_gnp(10, 0.0).num_edges == 0
        assert erdos_renyi_gnp(10, 1.0).num_edges == 45

    def test_gnm_has_exact_edge_count(self):
        g = erdos_renyi_gnm(40, 100, seed=2)
        assert g.num_edges == 100

    def test_gnm_rejects_impossible_edge_count(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(5, 100)

    def test_random_bipartite_has_no_intra_part_edges(self):
        g = random_bipartite_graph(10, 12, 0.3, seed=1)
        for u, v in g.iter_edges():
            assert (u < 10) != (v < 10)

    def test_random_bipartite_probability_bounds(self):
        with pytest.raises(GraphError):
            random_bipartite_graph(4, 4, -0.1)

    def test_random_regular_degrees_close_to_target(self):
        g = random_regular_graph(60, 4, seed=3)
        assert g.num_vertices == 60
        assert max(g.degrees()) <= 4
        assert g.average_degree == pytest.approx(4.0, abs=0.5)

    def test_random_regular_rejects_odd_total_degree(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_random_regular_rejects_degree_too_large(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)


class TestCascadeSwapGraph:
    def test_structure_counts(self):
        g = cascade_swap_graph(4)
        assert g.num_vertices == 12
        # 2 edges per triple + 2 links per non-last triple
        assert g.num_edges == 4 * 2 + 3 * 2

    def test_initial_set_is_independent(self):
        g = cascade_swap_graph(5)
        initial = cascade_initial_independent_set(5)
        assert is_independent_set(g, initial)
        assert len(initial) == 5

    def test_optimal_size(self):
        g = cascade_swap_graph(3)
        optimum = cascade_optimal_size(3)
        assert optimum == 6
        # the b/c vertices of every triple form an independent set
        candidate = {3 * i + 1 for i in range(3)} | {3 * i + 2 for i in range(3)}
        assert is_independent_set(g, candidate)

    def test_rejects_zero_triples(self):
        with pytest.raises(GraphError):
            cascade_swap_graph(0)
        with pytest.raises(GraphError):
            cascade_initial_independent_set(0)
        with pytest.raises(GraphError):
            cascade_optimal_size(0)
