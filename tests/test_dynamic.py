"""Unit tests for the incremental MIS maintainer (future-work prototype)."""

from __future__ import annotations

import random

import pytest

from repro.dynamic.maintainer import DynamicMISMaintainer
from repro.errors import GraphError, SolverError
from repro.graphs.generators import erdos_renyi_gnm, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.validation.checks import is_independent_set, is_maximal_independent_set


class TestInitialisation:
    def test_starts_from_a_pipeline_solution(self):
        graph = erdos_renyi_gnm(100, 300, seed=1)
        maintainer = DynamicMISMaintainer(graph)
        assert is_maximal_independent_set(graph, maintainer.independent_set)
        assert maintainer.num_vertices == 100
        assert maintainer.num_edges == 300

    def test_accepts_an_explicit_initial_set(self):
        graph = star_graph(5)
        maintainer = DynamicMISMaintainer(graph, initial={0})
        assert maintainer.independent_set == frozenset({0})

    def test_rejects_a_non_independent_initial_set(self):
        graph = path_graph(4)
        with pytest.raises(SolverError):
            DynamicMISMaintainer(graph, initial={1, 2})

    def test_empty_maintainer_grows_from_nothing(self):
        maintainer = DynamicMISMaintainer()
        assert maintainer.num_vertices == 0
        v = maintainer.add_vertex()
        assert v == 0
        assert maintainer.independent_set == frozenset({0})


class TestEdgeInsertions:
    def test_insertion_between_selected_vertices_evicts_one(self):
        graph = Graph(4, [(0, 2), (1, 3)])
        maintainer = DynamicMISMaintainer(graph, initial={0, 1})
        maintainer.insert_edge(0, 1)
        selected = maintainer.independent_set
        assert is_independent_set(maintainer.to_graph(), selected)
        assert maintainer.stats.evictions == 1
        maintainer.check_invariants()

    def test_insertion_keeps_invariants_over_a_random_stream(self):
        rng = random.Random(7)
        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(60, 90, seed=2))
        for _ in range(300):
            u, v = rng.randrange(60), rng.randrange(60)
            if u != v:
                maintainer.insert_edge(u, v)
        maintainer.check_invariants()
        graph = maintainer.to_graph()
        assert is_maximal_independent_set(graph, maintainer.independent_set)

    def test_insertion_creates_new_vertices(self):
        maintainer = DynamicMISMaintainer()
        maintainer.insert_edge(0, 5)
        assert maintainer.num_vertices == 2
        maintainer.check_invariants()

    def test_duplicate_insertion_is_a_no_op(self):
        maintainer = DynamicMISMaintainer(path_graph(3))
        before = maintainer.stats.edges_inserted
        maintainer.insert_edge(0, 1)
        assert maintainer.stats.edges_inserted == before

    def test_self_loop_rejected(self):
        maintainer = DynamicMISMaintainer(path_graph(3))
        with pytest.raises(GraphError):
            maintainer.insert_edge(1, 1)
        with pytest.raises(GraphError):
            maintainer.insert_edge(-1, 0)


class TestEdgeDeletionsAndRebuild:
    def test_deletion_can_grow_the_set(self):
        graph = path_graph(3)  # 0-1-2, MIS {0, 2}
        maintainer = DynamicMISMaintainer(graph, initial={1})
        maintainer.delete_edge(0, 1)
        maintainer.check_invariants()
        assert 0 in maintainer.independent_set

    def test_deleting_a_missing_edge_is_a_no_op(self):
        maintainer = DynamicMISMaintainer(path_graph(4))
        maintainer.delete_edge(0, 3)
        assert maintainer.stats.edges_deleted == 0

    def test_mixed_stream_keeps_invariants(self):
        rng = random.Random(11)
        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(80, 200, seed=3))
        for step in range(400):
            u, v = rng.randrange(80), rng.randrange(80)
            if u == v:
                continue
            if step % 3 == 0:
                maintainer.delete_edge(u, v)
            else:
                maintainer.insert_edge(u, v)
        maintainer.check_invariants()

    def test_rebuild_never_shrinks_below_the_incremental_set_much(self):
        rng = random.Random(13)
        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(100, 200, seed=4))
        for _ in range(200):
            u, v = rng.randrange(100), rng.randrange(100)
            if u != v:
                maintainer.insert_edge(u, v)
        incremental = maintainer.size
        maintainer.rebuild()
        maintainer.check_invariants()
        assert maintainer.stats.rebuilds == 1
        assert maintainer.size >= incremental - 2

    def test_stats_accumulate(self):
        maintainer = DynamicMISMaintainer(path_graph(5))
        maintainer.insert_edge(0, 4)
        maintainer.delete_edge(0, 4)
        maintainer.add_vertex()
        stats = maintainer.stats
        assert stats.edges_inserted == 1
        assert stats.edges_deleted == 1
        assert stats.vertices_added == 1


class TestBulkUpdates:
    def test_bulk_stream_matches_per_edge_application(self):
        rng = random.Random(17)
        insertions = []
        deletions = []
        for _ in range(150):
            u, v = rng.randrange(70), rng.randrange(70)
            if u != v:
                insertions.append((u, v))
        for _ in range(40):
            u, v = rng.randrange(70), rng.randrange(70)
            if u != v:
                deletions.append((u, v))

        bulk = DynamicMISMaintainer(erdos_renyi_gnm(70, 120, seed=5))
        sequential = DynamicMISMaintainer(erdos_renyi_gnm(70, 120, seed=5))
        bulk.apply_updates(insertions=insertions, deletions=deletions)
        for u, v in insertions:
            sequential.insert_edge(u, v)
        for u, v in deletions:
            sequential.delete_edge(u, v)
        assert bulk.independent_set == sequential.independent_set
        assert bulk.num_edges == sequential.num_edges
        assert bulk.stats == sequential.stats
        bulk.check_invariants()

    def test_bulk_stream_accepts_ndarrays(self):
        np = pytest.importorskip("numpy")
        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(40, 60, seed=6))
        insertions = np.asarray([[0, 39], [1, 38], [2, 37]], dtype=np.int64)
        maintainer.apply_updates(insertions=insertions)
        assert maintainer.stats.edges_inserted <= 3  # duplicates are no-ops
        maintainer.check_invariants()

    def test_to_graph_reflects_the_delta_overlay(self):
        maintainer = DynamicMISMaintainer(path_graph(4))
        maintainer.delete_edge(1, 2)
        maintainer.insert_edge(0, 3)
        graph = maintainer.to_graph()
        assert not graph.has_edge(1, 2)
        assert graph.has_edge(0, 3)
        assert graph.num_edges == maintainer.num_edges

    def test_invariant_checker_recomputes_tightness(self):
        maintainer = DynamicMISMaintainer(erdos_renyi_gnm(50, 120, seed=7))
        maintainer._tight[0] += 1  # simulate a maintainer bug
        with pytest.raises(SolverError):
            maintainer.check_invariants()
        maintainer._tight[0] -= 1
        maintainer.check_invariants()
