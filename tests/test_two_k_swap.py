"""Unit tests for Algorithms 3 & 4, the two-k-swap pass."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.core.two_k_swap import two_k_swap
from repro.errors import SolverError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.validation.checks import is_independent_set, is_maximal_independent_set


def figure7_graph() -> Graph:
    """The 2-k-swap example of Figure 7.

    Vertices 1 and 2 (v2 and v3 in the paper) form the IS pair that can be
    exchanged against four vertices {v4, v5, v6, v8}; vertex 6 (v7)
    conflicts and stays out; vertex 0 (v1) is an independent pendant.
    """

    # v1=0, v2=1, v3=2, v4=3, v5=4, v6=5, v7=6, v8=7
    # v4, v5, v6, v8 are each adjacent to both v2 and v3; v7 is adjacent to
    # v5 and v6; v1 is adjacent to v2 (degree 1).
    return Graph(
        8,
        [
            (0, 1),
            (3, 1), (3, 2),
            (4, 1), (4, 2),
            (5, 1), (5, 2),
            (7, 1), (7, 2),
            (6, 4), (6, 5),
        ],
    )


class TestTwoKSwapBasics:
    def test_two_two_swap_on_bipartite_pair(self):
        # IS = the 2-side of K_{2,3}: a 2-3 swap replaces it by the 3-side.
        graph = complete_bipartite_graph(2, 3)
        result = two_k_swap(graph, initial={0, 1})
        assert result.size == 3
        assert result.independent_set == frozenset({2, 3, 4})

    def test_figure7_example_reaches_size_five(self):
        graph = figure7_graph()
        result = two_k_swap(graph, initial={0, 1, 2}, order="id")
        # Paper's Example 3: the larger IS is {v1, v4, v5, v6, v8}.
        assert result.size == 5
        assert result.independent_set == frozenset({0, 3, 4, 5, 7})

    def test_never_decreases_the_initial_size(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(120, 360, seed=seed)
            start = greedy_mis(graph)
            result = two_k_swap(graph, initial=start)
            assert result.size >= start.size

    def test_output_is_maximal_independent(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(150, 500, seed=seed)
            result = two_k_swap(graph)
            assert is_independent_set(graph, result.independent_set)
            assert is_maximal_independent_set(graph, result.independent_set)

    def test_at_least_as_large_as_one_k_swap_on_power_law_graphs(self):
        for seed in range(3):
            graph = plrg_graph_with_vertex_count(1_200, 2.0, seed=seed)
            one_k = one_k_swap(graph)
            two_k = two_k_swap(graph)
            assert two_k.size >= one_k.size

    def test_trivial_graphs(self):
        assert two_k_swap(empty_graph(3)).size == 3
        assert two_k_swap(complete_graph(4)).size == 1
        assert two_k_swap(star_graph(6)).size == 6
        assert two_k_swap(path_graph(9)).size == 5
        assert two_k_swap(cycle_graph(8)).size == 4

    def test_invalid_initial_vertex_rejected(self):
        with pytest.raises(SolverError):
            two_k_swap(path_graph(3), initial={9})

    def test_known_optimum_graphs_never_exceed_optimum(self, known_optimum_graph):
        graph, optimum = known_optimum_graph
        result = two_k_swap(graph)
        assert result.size <= optimum
        assert is_maximal_independent_set(graph, result.independent_set)


class TestTwoKSwapTelemetry:
    def test_round_stats_are_consistent(self):
        graph = erdos_renyi_gnm(200, 700, seed=21)
        result = two_k_swap(graph)
        assert result.num_rounds >= 1
        assert sum(r.gained for r in result.rounds) == result.size - result.initial_size
        assert result.rounds[-1].is_size_after == result.size

    def test_sc_telemetry_reported(self):
        graph = figure7_graph()
        result = two_k_swap(graph, initial={0, 1, 2}, order="id")
        assert result.extras["max_sc_vertices"] >= 2
        assert result.rounds[0].two_k_swaps >= 1

    def test_sc_size_stays_below_vertex_count(self):
        graph = plrg_graph_with_vertex_count(1_500, 2.0, seed=4)
        result = two_k_swap(graph)
        assert result.extras["max_sc_vertices"] <= graph.num_vertices

    def test_memory_model_includes_sc(self):
        graph = erdos_renyi_gnm(100, 250, seed=22)
        result = two_k_swap(graph)
        expected = 100 * (1 + 8) + int(result.extras["max_sc_vertices"]) * 4
        assert result.memory_bytes == expected

    def test_max_rounds_limits_rounds(self):
        graph = erdos_renyi_gnm(300, 1_200, seed=23)
        limited = two_k_swap(graph, max_rounds=1)
        assert limited.num_rounds <= 1
        assert is_independent_set(graph, limited.independent_set)

    def test_runs_from_file_reader(self):
        graph = erdos_renyi_gnm(150, 500, seed=24)
        reader = AdjacencyFileReader(write_adjacency_file(graph))
        result = two_k_swap(reader)
        assert is_maximal_independent_set(graph, result.independent_set)
        assert result.io.sequential_scans >= 3

    def test_random_lookups_only_for_skeleton_verification(self):
        # The safety re-verification may need a handful of random lookups,
        # but never anywhere near one per vertex.
        graph = plrg_graph_with_vertex_count(1_500, 2.0, seed=5)
        result = two_k_swap(graph)
        assert result.io.random_vertex_lookups <= graph.num_vertices // 10
