"""Unit tests for the repro-mis command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Facebook" in out
        assert "Clueweb12" in out

    def test_theory_prints_model_quantities(self, capsys):
        assert main(["theory", "--vertices", "50000", "--beta", "2.2"]) == 0
        out = capsys.readouterr().out
        assert "greedy_size" in out
        assert "sc_vertices_bound" in out

    def test_generate_solve_and_bound_workflow(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        assert main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "500", "--seed", "3",
        ]) == 0
        assert path.exists()
        assert main(["solve", str(path), "--pipeline", "two_k_swap"]) == 0
        out = capsys.readouterr().out
        assert "two_k_swap" in out
        assert main(["bound", str(path)]) == 0
        assert "upper bound" in capsys.readouterr().out

    def test_solve_json_output(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "100", "--edges", "200"])
        capsys.readouterr()
        assert main(["solve", str(path), "--pipeline", "greedy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "greedy"
        assert payload["size"] > 0

    def test_generate_plrg_model(self, tmp_path, capsys):
        path = tmp_path / "plrg.adj"
        assert main([
            "generate", str(path), "--model", "plrg",
            "--vertices", "1000", "--beta", "2.1", "--order", "id",
        ]) == 0
        assert "vertices" in capsys.readouterr().out

    def test_generate_dataset_standin(self, tmp_path, capsys):
        path = tmp_path / "dblp.adj"
        assert main([
            "generate", str(path), "--model", "dataset",
            "--dataset", "dblp", "--scale", "0.001",
        ]) == 0
        assert path.exists()

    def test_import_export_roundtrip(self, tmp_path, capsys):
        text_in = tmp_path / "edges.txt"
        text_in.write_text("# toy graph\n0 1\n1 2\n2 3\n3 0\n")
        adjacency = tmp_path / "toy.adj"
        text_out = tmp_path / "edges_out.txt"
        assert main(["import", str(text_in), str(adjacency), "--order", "id"]) == 0
        assert "4 vertices" in capsys.readouterr().out
        assert main(["export", str(adjacency), str(text_out)]) == 0
        assert "4 edges" in capsys.readouterr().out
        assert text_out.exists()

    def test_compare_runs_pipelines_and_comparators(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "300"])
        capsys.readouterr()
        assert main(["compare", str(path), "--max-rounds", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("greedy", "two_k_swap", "local_search", "dynamic_update"):
            assert name in out
        assert "in-memory" in out and "semi-external" in out

    def test_compare_memory_limit_reports_not_applicable(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "200", "--edges", "500"])
        capsys.readouterr()
        assert main([
            "compare", str(path),
            "--algorithms", "greedy,local_search,dynamic_update",
            "--memory-limit-bytes", "64", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["algorithm"]: row for row in rows}
        assert by_name["greedy"]["not_applicable"] is False
        assert by_name["local_search"]["not_applicable"] is True
        assert by_name["local_search"]["size"] == "N/A"
        assert by_name["dynamic_update"]["not_applicable"] is True

    def test_compare_rejects_unknown_algorithms(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        assert main(["compare", str(path), "--algorithms", "quantum"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_compare_backends_agree_on_sizes(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "plrg", "--vertices", "500", "--seed", "4"])
        capsys.readouterr()
        sizes = {}
        for backend in ("python", "numpy"):
            assert main([
                "compare", str(path), "--backend", backend,
                "--algorithms", "local_search,dynamic_update", "--json",
            ]) == 0
            rows = json.loads(capsys.readouterr().out)
            sizes[backend] = {row["algorithm"]: row["size"] for row in rows}
        assert sizes["python"] == sizes["numpy"]

    def test_reduce_command_reports_kernel(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "220"])
        capsys.readouterr()
        assert main(["reduce", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kernel vertices" in out
        assert "pendant-rule applications" in out
