"""Unit tests for the repro-mis command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Facebook" in out
        assert "Clueweb12" in out

    def test_theory_prints_model_quantities(self, capsys):
        assert main(["theory", "--vertices", "50000", "--beta", "2.2"]) == 0
        out = capsys.readouterr().out
        assert "greedy_size" in out
        assert "sc_vertices_bound" in out

    def test_generate_solve_and_bound_workflow(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        assert main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "500", "--seed", "3",
        ]) == 0
        assert path.exists()
        assert main(["solve", str(path), "--pipeline", "two_k_swap"]) == 0
        out = capsys.readouterr().out
        assert "two_k_swap" in out
        assert main(["bound", str(path)]) == 0
        assert "upper bound" in capsys.readouterr().out

    def test_solve_json_output(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "100", "--edges", "200"])
        capsys.readouterr()
        assert main(["solve", str(path), "--pipeline", "greedy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "greedy"
        assert payload["size"] > 0

    def test_generate_plrg_model(self, tmp_path, capsys):
        path = tmp_path / "plrg.adj"
        assert main([
            "generate", str(path), "--model", "plrg",
            "--vertices", "1000", "--beta", "2.1", "--order", "id",
        ]) == 0
        assert "vertices" in capsys.readouterr().out

    def test_generate_dataset_standin(self, tmp_path, capsys):
        path = tmp_path / "dblp.adj"
        assert main([
            "generate", str(path), "--model", "dataset",
            "--dataset", "dblp", "--scale", "0.001",
        ]) == 0
        assert path.exists()

    def test_import_export_roundtrip(self, tmp_path, capsys):
        text_in = tmp_path / "edges.txt"
        text_in.write_text("# toy graph\n0 1\n1 2\n2 3\n3 0\n")
        adjacency = tmp_path / "toy.adj"
        text_out = tmp_path / "edges_out.txt"
        assert main(["import", str(text_in), str(adjacency), "--order", "id"]) == 0
        assert "4 vertices" in capsys.readouterr().out
        assert main(["export", str(adjacency), str(text_out)]) == 0
        assert "4 edges" in capsys.readouterr().out
        assert text_out.exists()

    def test_compare_runs_pipelines_and_comparators(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "300"])
        capsys.readouterr()
        assert main(["compare", str(path), "--max-rounds", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("greedy", "two_k_swap", "local_search", "dynamic_update"):
            assert name in out
        assert "in-memory" in out and "semi-external" in out

    def test_compare_memory_limit_reports_not_applicable(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "200", "--edges", "500"])
        capsys.readouterr()
        assert main([
            "compare", str(path),
            "--algorithms", "greedy,local_search,dynamic_update",
            "--memory-limit-bytes", "64", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["algorithm"]: row for row in rows}
        assert by_name["greedy"]["not_applicable"] is False
        assert by_name["local_search"]["not_applicable"] is True
        assert by_name["local_search"]["size"] == "N/A"
        assert by_name["dynamic_update"]["not_applicable"] is True

    def test_compare_rejects_unknown_algorithms(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        assert main(["compare", str(path), "--algorithms", "quantum"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_compare_backends_agree_on_sizes(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "plrg", "--vertices", "500", "--seed", "4"])
        capsys.readouterr()
        sizes = {}
        for backend in ("python", "numpy"):
            assert main([
                "compare", str(path), "--backend", backend,
                "--algorithms", "local_search,dynamic_update", "--json",
            ]) == 0
            rows = json.loads(capsys.readouterr().out)
            sizes[backend] = {row["algorithm"]: row["size"] for row in rows}
        assert sizes["python"] == sizes["numpy"]

    def test_reduce_command_reports_kernel(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "220"])
        capsys.readouterr()
        assert main(["reduce", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kernel vertices" in out
        assert "pendant-rule applications" in out


class TestRunCommand:
    """The declarative scenario runner (``repro-mis run --config``)."""

    @pytest.fixture
    def adjacency(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "600", "--seed", "9",
        ])
        capsys.readouterr()
        return path

    def _write_config(self, tmp_path, payload):
        config = tmp_path / "run.json"
        config.write_text(json.dumps(payload))
        return str(config)

    def test_named_pipeline_run(self, adjacency, tmp_path, capsys):
        config = self._write_config(
            tmp_path, {"pipeline": "two_k_swap", "input": str(adjacency)}
        )
        assert main(["run", "--config", config, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "two_k_swap"
        assert [s["stage"] for s in payload["stages"]] == ["greedy", "two_k_swap"]

    def test_inline_spec_with_stage_options(self, adjacency, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            {
                "pipeline": {
                    "name": "capped",
                    "stages": [
                        {"stage": "greedy"},
                        {"stage": "one_k_swap", "options": {"max_rounds": 1}},
                    ],
                },
                "input": str(adjacency),
                "backend": "numpy",
            },
        )
        assert main(["run", "--config", config, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "capped"
        assert payload["rounds"] <= 1

    def test_reduce_composition_via_run(self, adjacency, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            {
                "pipeline": {
                    "name": "reduce_then_greedy",
                    "stages": ["reduce", "greedy"],
                },
                "input": str(adjacency),
            },
        )
        assert main(["run", "--config", config, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["stage"] for s in payload["stages"]] == ["reduce", "greedy"]
        assert payload["size"] > 0

    def test_invalid_spec_reports_clear_message(self, adjacency, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            {
                "pipeline": {"name": "bad", "stages": ["warp_drive"]},
                "input": str(adjacency),
            },
        )
        assert main(["run", "--config", config]) == 2
        err = capsys.readouterr().err
        assert "unknown stage 'warp_drive'" in err
        assert "available:" in err

    def test_unknown_named_pipeline_rejected(self, adjacency, tmp_path, capsys):
        config = self._write_config(
            tmp_path, {"pipeline": "nope", "input": str(adjacency)}
        )
        assert main(["run", "--config", config]) == 2
        assert "unknown named pipeline" in capsys.readouterr().err

    def test_missing_config_file(self, tmp_path, capsys):
        assert main(["run", "--config", str(tmp_path / "absent.json")]) == 2
        assert "cannot read run spec" in capsys.readouterr().err

    def test_run_with_checkpoint_resume_cycle(self, adjacency, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        base = {
            "pipeline": "two_k_swap",
            "input": str(adjacency),
            "checkpoint": str(checkpoint),
        }
        config = self._write_config(tmp_path, base)
        assert main(["run", "--config", config, "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert checkpoint.exists()
        assert main(["run", "--config", config, "--resume", "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        for key in reference:
            if key in ("elapsed_seconds", "stages"):
                continue
            assert resumed[key] == reference[key], key


class TestSolveCheckpointFlags:
    def test_interrupt_resume_round_trip(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        checkpoint = tmp_path / "ck.json"
        main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "300", "--edges", "900", "--seed", "3",
        ])
        capsys.readouterr()
        assert main(["solve", str(path), "--pipeline", "two_k_swap", "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        code = main([
            "solve", str(path), "--pipeline", "two_k_swap",
            "--checkpoint", str(checkpoint), "--interrupt-after", "2",
        ])
        assert code == 3
        assert "resume" in capsys.readouterr().err
        assert main([
            "solve", str(path), "--pipeline", "two_k_swap",
            "--checkpoint", str(checkpoint), "--resume", "--json",
        ]) == 0
        resumed = json.loads(capsys.readouterr().out)
        for key in reference:
            if key == "elapsed_seconds":
                continue
            if key == "stages":
                ref_stages = [
                    {k: v for k, v in s.items() if k != "elapsed_seconds"}
                    for s in reference[key]
                ]
                res_stages = [
                    {k: v for k, v in s.items() if k != "elapsed_seconds"}
                    for s in resumed[key]
                ]
                assert ref_stages == res_stages
                continue
            assert resumed[key] == reference[key], key

    def test_resume_without_checkpoint_rejected(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        assert main(["solve", str(path), "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_corrupt_checkpoint_reports_typed_error(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        checkpoint = tmp_path / "ck.json"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        checkpoint.write_text("garbage")
        assert main([
            "solve", str(path), "--checkpoint", str(checkpoint), "--resume",
        ]) == 2
        assert "not a checkpoint" in capsys.readouterr().err


class TestReducePipelineFlag:
    def test_reduce_with_pipeline_solves_kernel(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "220"])
        capsys.readouterr()
        assert main(["reduce", str(path), "--pipeline", "two_k_swap"]) == 0
        out = capsys.readouterr().out
        assert "kernel vertices" in out
        assert "solved independent set" in out


class TestCompareContextIsolation:
    def test_reduce_pipeline_does_not_leak_kernel_into_later_rows(
        self, tmp_path, capsys
    ):
        """A reduce-containing row must not shrink the graph for its successors."""

        path = tmp_path / "toy.adj"
        main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "300", "--seed", "2",
        ])
        capsys.readouterr()
        assert main([
            "compare", str(path),
            "--algorithms", "reduce_two_k_swap,two_k_swap,local_search", "--json",
        ]) == 0
        rows = {r["algorithm"]: r["size"] for r in json.loads(capsys.readouterr().out)}
        assert main([
            "compare", str(path), "--algorithms", "two_k_swap,local_search", "--json",
        ]) == 0
        alone = {r["algorithm"]: r["size"] for r in json.loads(capsys.readouterr().out)}
        assert rows["two_k_swap"] == alone["two_k_swap"]
        assert rows["local_search"] == alone["local_search"]
        assert rows["reduce_two_k_swap"] >= alone["two_k_swap"]


class TestRunSpecBackendValidation:
    def test_unknown_backend_in_run_spec_is_a_clear_error(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        config = tmp_path / "run.json"
        config.write_text(json.dumps(
            {"pipeline": "greedy", "input": str(path), "backend": "bogus"}
        ))
        assert main(["run", "--config", str(config)]) == 2
        err = capsys.readouterr().err
        assert "not a registered kernel backend" in err


class TestInterruptRequiresCheckpoint:
    def test_interrupt_after_without_checkpoint_rejected(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        assert main(["solve", str(path), "--interrupt-after", "1"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_spec_level_resume_without_checkpoint_rejected(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        config = tmp_path / "run.json"
        config.write_text(json.dumps(
            {"pipeline": "greedy", "input": str(path), "resume": True}
        ))
        assert main(["run", "--config", str(config)]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_interrupt_after_must_be_positive(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "50", "--edges", "80"])
        capsys.readouterr()
        assert main([
            "solve", str(path),
            "--checkpoint", str(tmp_path / "ck.json"), "--interrupt-after", "0",
        ]) == 2
        assert ">= 1" in capsys.readouterr().err


class TestRunCommandErrorPaths:
    def test_missing_input_file_is_a_clean_error(self, tmp_path, capsys):
        config = tmp_path / "run.json"
        config.write_text(json.dumps(
            {"pipeline": "greedy", "input": str(tmp_path / "absent.adj")}
        ))
        assert main(["run", "--config", str(config)]) == 2
        assert "cannot open input" in capsys.readouterr().err

    def test_truncated_input_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.adj"
        bad.write_bytes(b"\x00\x01")
        config = tmp_path / "run.json"
        config.write_text(json.dumps({"pipeline": "greedy", "input": str(bad)}))
        assert main(["run", "--config", str(config)]) == 2
        assert "cannot open input" in capsys.readouterr().err


class TestReducePipelinePrefix:
    def test_reduce_prefixed_pipeline_not_doubled(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "150", "--edges", "220"])
        capsys.readouterr()
        assert main(["reduce", str(path), "--pipeline", "reduce_two_k_swap"]) == 0
        out = capsys.readouterr().out
        assert "solved independent set" in out


class TestRunConfigDir:
    """The scenario sweep: ``repro-mis run --config-dir DIR``."""

    @pytest.fixture
    def sweep_dir(self, tmp_path, capsys):
        adjacency = tmp_path / "toy.adj"
        main([
            "generate", str(adjacency), "--model", "gnm",
            "--vertices", "200", "--edges", "600", "--seed", "9",
        ])
        capsys.readouterr()
        config_dir = tmp_path / "specs"
        config_dir.mkdir()
        for name, pipeline in (
            ("one.json", "greedy"),
            ("two.json", "one_k_swap"),
            ("three.json", "two_k_swap"),
        ):
            (config_dir / name).write_text(
                json.dumps(
                    {"pipeline": pipeline, "input": str(adjacency), "max_rounds": 2}
                )
            )
        return config_dir

    def test_sweep_aggregates_per_stage_telemetry(self, sweep_dir, capsys):
        assert main(["run", "--config-dir", str(sweep_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["summary"]["algorithm"] for r in payload["runs"]] == [
            "greedy",  # one.json
            "two_k_swap",  # three.json (sorted name order)
            "one_k_swap",  # two.json
        ]
        aggregate = {row["stage"]: row for row in payload["aggregate_stages"]}
        # greedy ran in all three pipelines; the swap stages once each.
        assert aggregate["greedy"]["executions"] == 3
        assert aggregate["one_k_swap"]["executions"] == 1
        assert aggregate["two_k_swap"]["executions"] == 1
        assert aggregate["greedy"]["sequential_scans"] == sum(
            entry["io"]["sequential_scans"]
            for run in payload["runs"]
            for entry in run["stages"]
            if entry["stage"] == "greedy"
        )

    def test_sweep_table_output(self, sweep_dir, capsys):
        assert main(["run", "--config-dir", str(sweep_dir)]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep: 3 runs" in out
        assert "aggregate per-stage telemetry" in out

    def test_empty_directory_is_a_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["run", "--config-dir", str(empty)]) == 2
        assert "no *.json run specs" in capsys.readouterr().err

    def test_malformed_spec_names_the_file(self, sweep_dir, capsys):
        (sweep_dir / "broken.json").write_text("{nope")
        assert main(["run", "--config-dir", str(sweep_dir)]) == 2
        assert "broken.json" in capsys.readouterr().err

    def test_resume_flag_requires_single_config(self, sweep_dir, capsys):
        assert main(["run", "--config-dir", str(sweep_dir), "--resume"]) == 2
        assert "single --config" in capsys.readouterr().err

    def test_config_and_config_dir_are_exclusive(self, sweep_dir):
        with pytest.raises(SystemExit):
            main([
                "run", "--config", "x.json", "--config-dir", str(sweep_dir),
            ])


class TestCheckpointCadenceFlag:
    def test_nonpositive_cadence_rejected(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "100", "--edges", "200"])
        capsys.readouterr()
        assert main([
            "solve", str(path), "--checkpoint", str(tmp_path / "ck"),
            "--checkpoint-every-seconds", "0",
        ]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_cadence_run_still_solves(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main(["generate", str(path), "--model", "gnm", "--vertices", "100", "--edges", "200"])
        capsys.readouterr()
        assert main([
            "solve", str(path), "--pipeline", "one_k_swap",
            "--checkpoint", str(tmp_path / "ck"),
            "--checkpoint-every-seconds", "3600", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["size"] > 0


class TestServiceCommands:
    """The solver-as-a-service verbs, driven end to end through the CLI."""

    @pytest.fixture
    def adjacency(self, tmp_path, capsys):
        path = tmp_path / "toy.adj"
        main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "600", "--seed", "9",
        ])
        capsys.readouterr()
        return path

    @pytest.fixture
    def spec_path(self, adjacency, tmp_path):
        config = tmp_path / "job.json"
        config.write_text(
            json.dumps(
                {"pipeline": "two_k_swap", "input": str(adjacency), "max_rounds": 2}
            )
        )
        return str(config)

    def test_submit_serve_status_results_cycle(self, spec_path, tmp_path, capsys):
        service_dir = str(tmp_path / "svc")
        assert main(["submit", service_dir, "--config", spec_path, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1 and records[0]["state"] == "queued"
        job_id = records[0]["job_id"]

        assert main(["serve", service_dir, "--drain", "--poll-interval", "0.02"]) == 0
        capsys.readouterr()

        assert main(["status", service_dir, job_id, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)[0]
        assert record["state"] == "done"

        assert main(["results", service_dir, job_id, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "two_k_swap"
        assert payload["size"] > 0

    def test_duplicate_submission_served_from_cache(
        self, spec_path, tmp_path, capsys
    ):
        service_dir = str(tmp_path / "svc")
        main(["submit", service_dir, "--config", spec_path])
        main(["serve", service_dir, "--drain", "--poll-interval", "0.02"])
        capsys.readouterr()
        assert main(["submit", service_dir, "--config", spec_path, "--json"]) == 0
        job_id = json.loads(capsys.readouterr().out)[0]["job_id"]
        main(["serve", service_dir, "--drain", "--poll-interval", "0.02"])
        capsys.readouterr()
        assert main(["status", service_dir, job_id, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)[0]
        assert record["state"] == "done"
        assert record["cache_hit"] is True
        assert record["attempts"] == 0

    def test_crash_drill_via_interrupt_after(self, spec_path, tmp_path, capsys):
        service_dir = str(tmp_path / "svc")
        assert main([
            "submit", service_dir, "--config", spec_path,
            "--interrupt-after", "1", "--json",
        ]) == 0
        job_id = json.loads(capsys.readouterr().out)[0]["job_id"]
        assert main(["serve", service_dir, "--drain", "--poll-interval", "0.02"]) == 0
        capsys.readouterr()
        assert main(["status", service_dir, job_id, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)[0]
        assert record["state"] == "done"
        assert record["attempts"] > 1  # crashed and resumed at least once

    def test_submit_wait_times_out_without_a_daemon(
        self, spec_path, tmp_path, capsys
    ):
        # --wait blocks on the job record; with no daemon to run the job
        # the wait must end in a clean timeout error, not a hang.
        service_dir = str(tmp_path / "svc")
        assert main([
            "submit", service_dir, "--config", spec_path,
            "--wait", "--timeout", "0.2",
        ]) == 2
        assert "timed out" in capsys.readouterr().err

    def test_batch_submit_directory(self, adjacency, tmp_path, capsys):
        config_dir = tmp_path / "specs"
        config_dir.mkdir()
        for name, pipeline in (("a.json", "greedy"), ("b.json", "one_k_swap")):
            (config_dir / name).write_text(
                json.dumps(
                    {"pipeline": pipeline, "input": str(adjacency), "max_rounds": 2}
                )
            )
        service_dir = str(tmp_path / "svc")
        assert main([
            "submit", service_dir, "--config-dir", str(config_dir), "--json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert main(["serve", service_dir, "--drain", "--poll-interval", "0.02"]) == 0
        capsys.readouterr()
        assert main(["status", service_dir, "--json"]) == 0
        assert [r["state"] for r in json.loads(capsys.readouterr().out)] == [
            "done",
            "done",
        ]

    def test_cancel_queued_job(self, spec_path, tmp_path, capsys):
        service_dir = str(tmp_path / "svc")
        main(["submit", service_dir, "--config", spec_path, "--json"])
        job_id = json.loads(capsys.readouterr().out)[0]["job_id"]
        assert main(["cancel", service_dir, job_id]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["cancel", service_dir, job_id]) == 2
        assert "cannot cancel" in capsys.readouterr().err

    def test_status_on_missing_service_dir(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nowhere")]) == 2
        assert "not a service directory" in capsys.readouterr().err

    def test_serve_rejects_negative_cadence(self, tmp_path, capsys):
        assert main([
            "serve", str(tmp_path / "svc"), "--drain",
            "--checkpoint-every-seconds", "-1",
        ]) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_interrupt_after_requires_single_config(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        assert main([
            "submit", str(tmp_path / "svc"), "--config-dir", str(specs),
            "--interrupt-after", "2",
        ]) == 2
        assert "single --config" in capsys.readouterr().err

    def test_submit_missing_input_is_a_clean_error(self, tmp_path, capsys):
        config = tmp_path / "job.json"
        config.write_text(
            json.dumps({"pipeline": "greedy", "input": str(tmp_path / "no.adj")})
        )
        assert main(["submit", str(tmp_path / "svc"), "--config", str(config)]) == 2
        assert "cannot digest" in capsys.readouterr().err


class TestConvertCommand:
    def _generate(self, tmp_path):
        path = tmp_path / "toy.adj"
        assert main([
            "generate", str(path), "--model", "gnm",
            "--vertices", "200", "--edges", "500", "--seed", "7",
        ]) == 0
        return path

    def test_convert_round_trip_is_the_identity(self, tmp_path, capsys):
        text = self._generate(tmp_path)
        binary = tmp_path / "toy.csr"
        restored = tmp_path / "restored.adj"
        assert main(["convert", str(text), str(binary), "--to-binary"]) == 0
        out = capsys.readouterr().out
        assert "200 vertices" in out
        assert "digest" in out
        assert main(["convert", str(binary), str(restored), "--to-adjacency"]) == 0
        assert text.read_bytes() == restored.read_bytes()

    def test_solve_auto_detects_the_binary_artifact(self, tmp_path, capsys):
        text = self._generate(tmp_path)
        binary = tmp_path / "toy.csr"
        main(["convert", str(text), str(binary), "--to-binary"])
        capsys.readouterr()
        assert main(["solve", str(text), "--pipeline", "two_k_swap", "--json"]) == 0
        text_payload = json.loads(capsys.readouterr().out)
        assert main(["solve", str(binary), "--pipeline", "two_k_swap", "--json"]) == 0
        binary_payload = json.loads(capsys.readouterr().out)
        # Wall-clock timings legitimately differ between the two runs; the
        # parity contract is sets, rounds, extras and modeled IOStats.
        for payload in (text_payload, binary_payload):
            payload.pop("elapsed_seconds", None)
            for stage in payload.get("stages", []):
                stage.pop("elapsed_seconds", None)
        assert text_payload == binary_payload

    def test_compare_bound_and_reduce_accept_the_artifact(self, tmp_path, capsys):
        text = self._generate(tmp_path)
        binary = tmp_path / "toy.csr"
        main(["convert", str(text), str(binary), "--to-binary"])
        capsys.readouterr()
        assert main(["bound", str(binary)]) == 0
        assert "upper bound" in capsys.readouterr().out
        assert main([
            "compare", str(binary), "--algorithms", "greedy,local_search",
        ]) == 0
        assert "local_search" in capsys.readouterr().out
        assert main(["reduce", str(binary)]) == 0
        assert "kernel vertices" in capsys.readouterr().out

    def test_convert_requires_a_direction(self, tmp_path):
        text = self._generate(tmp_path)
        with pytest.raises(SystemExit):
            main(["convert", str(text), str(tmp_path / "out.csr")])

    def test_convert_wrong_direction_is_a_clean_error(self, tmp_path, capsys):
        text = self._generate(tmp_path)
        capsys.readouterr()
        # --to-adjacency on a text file: the magic is not a CSR artifact.
        assert main([
            "convert", str(text), str(tmp_path / "out.adj"), "--to-adjacency",
        ]) == 2
        assert "not a binary CSR artifact" in capsys.readouterr().err

    def test_convert_missing_input_is_a_clean_error(self, tmp_path, capsys):
        assert main([
            "convert", str(tmp_path / "no.adj"), str(tmp_path / "o.csr"),
            "--to-binary",
        ]) == 2
        assert capsys.readouterr().err


class TestServeCacheLimitFlag:
    def test_negative_cache_limit_rejected(self, tmp_path, capsys):
        assert main([
            "serve", str(tmp_path / "svc"), "--cache-limit-bytes", "-1",
        ]) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_cache_limit_reaches_the_service_config(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", str(tmp_path / "svc"), "--cache-limit-bytes", "4096"]
        )
        assert args.cache_limit_bytes == 4096
        default = build_parser().parse_args(["serve", str(tmp_path / "svc")])
        assert default.cache_limit_bytes is None
