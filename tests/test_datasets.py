"""Unit tests for the Table 4 dataset stand-ins."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graphs.datasets import (
    DATASETS,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_dataset,
)


class TestDatasetRegistry:
    def test_all_ten_paper_datasets_present(self):
        names = available_datasets()
        assert len(names) == 10
        assert names[0] == "astroph"
        assert names[-1] == "clueweb12"

    def test_spec_lookup_is_case_insensitive(self):
        assert dataset_spec("Facebook").name == "Facebook"
        assert dataset_spec("FACEBOOK") is dataset_spec("facebook")

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            dataset_spec("orkut")

    def test_paper_characteristics_recorded(self):
        twitter = dataset_spec("twitter")
        assert twitter.real_edges == 2_405_000_000
        assert twitter.avg_degree == pytest.approx(78.12)
        clueweb = dataset_spec("clueweb12")
        assert clueweb.disk_size == "169GB"

    def test_scaled_vertices_clamped_to_minimum(self):
        spec = dataset_spec("astroph")
        assert spec.scaled_vertices(1e-9, min_vertices=300) == 300
        assert spec.scaled_vertices(1.0) == spec.real_vertices

    def test_scaled_vertices_rejects_non_positive_scale(self):
        with pytest.raises(DatasetError):
            dataset_spec("dblp").scaled_vertices(0.0)


class TestDatasetGeneration:
    def test_load_is_reproducible(self):
        g1 = load_dataset("dblp", scale=0.002, seed=1)
        g2 = load_dataset("dblp", scale=0.002, seed=1)
        assert g1 == g2

    def test_different_seeds_differ(self):
        g1 = load_dataset("dblp", scale=0.002, seed=1)
        g2 = load_dataset("dblp", scale=0.002, seed=2)
        assert g1 != g2

    def test_vertex_count_scales(self):
        small = load_dataset("youtube", scale=0.0005, seed=0)
        large = load_dataset("youtube", scale=0.002, seed=0)
        assert large.num_vertices > small.num_vertices

    def test_average_degree_roughly_matches_spec(self):
        spec = dataset_spec("blog")
        graph = load_dataset("blog", scale=0.001, seed=0)
        # The configuration model drops collisions, so allow 35% slack.
        assert graph.average_degree == pytest.approx(spec.avg_degree, rel=0.35)

    def test_sparse_dataset_has_low_average_degree(self):
        uniport = load_dataset("uniport", scale=0.001, seed=0)
        twitterish = load_dataset("astroph", scale=0.02, seed=0)
        assert uniport.average_degree < twitterish.average_degree

    def test_minimum_vertices_respected(self):
        g = load_dataset("astroph", scale=1e-9, seed=0, min_vertices=500)
        assert g.num_vertices == 500
