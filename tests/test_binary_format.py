"""The memory-mapped binary CSR artifact and its integrity guarantees.

Three claim groups are pinned here:

* **drop-in parity** — a solve over the converted artifact is
  bit-identical to the same solve over the text adjacency file: same
  independent sets, same round telemetry, and the same ``IOStats``
  (the memmap source charges modeled I/O in the text file's byte
  geometry), across both kernel backends, for streaming scans, batched
  scans, random lookups (cold and mid-scan) and ``to_graph``;
* **integrity** — truncation, flipped section bytes, a damaged header
  checksum, a foreign magic and an unsupported format version each raise
  the matching typed error (mirroring ``tests/test_checkpoint.py`` for
  the checkpoint format);
* **identity** — the embedded content digest is stable across
  re-conversion, differs between different graphs, and converting
  binary → adjacency reproduces the original text file byte for byte.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

np = pytest.importorskip("numpy")

from repro.core import greedy_mis, one_k_swap, two_k_swap
from repro.errors import (
    BinaryCorruptError,
    BinaryFormatError,
    BinaryVersionError,
    FormatError,
    StorageError,
)
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi_gnm,
    star_graph,
)
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.binary_format import (
    BINARY_HEADER_SIZE,
    BINARY_MAGIC,
    MemmapAdjacencySource,
    binary_file_size,
    read_binary_header,
    write_binary_csr,
)
from repro.storage.converters import adjacency_to_binary, binary_to_adjacency
from repro.storage.io_stats import IOStats
from repro.storage.registry import open_adjacency_source
from repro.storage.scan import as_scan_source

_HEADER_PREFIX = struct.Struct("<8sIIQQ16s")


def _write_pair(graph, tmp_path, name="g", block_size=4096, order=None):
    """Write ``graph`` as a text adjacency file and its binary twin."""

    text_path = os.path.join(str(tmp_path), f"{name}.adj")
    binary_path = os.path.join(str(tmp_path), f"{name}.csr")
    if order is None:
        order = graph.degree_ascending_order()
    write_adjacency_file(
        graph, text_path, order=order, block_size=block_size
    ).close()
    adjacency_to_binary(text_path, binary_path, block_size=block_size)
    return text_path, binary_path


def _open_pair(text_path, binary_path, block_size=4096):
    reader = AdjacencyFileReader(text_path, block_size=block_size, stats=IOStats())
    memmap = MemmapAdjacencySource(
        binary_path, block_size=block_size, stats=IOStats()
    )
    return reader, memmap


def assert_binary_parity(graph, tmp_path, block_size=4096, max_rounds=8):
    """Every algorithm × backend over text vs binary: identical everything."""

    text_path, binary_path = _write_pair(graph, tmp_path, block_size=block_size)
    for algorithm, kwargs in (
        (greedy_mis, {}),
        (one_k_swap, {"max_rounds": max_rounds}),
        (two_k_swap, {"max_rounds": max_rounds}),
    ):
        for backend in ("python", "numpy"):
            reader, memmap = _open_pair(text_path, binary_path, block_size)
            text_result = algorithm(reader, backend=backend, **kwargs)
            binary_result = algorithm(memmap, backend=backend, **kwargs)
            name = f"{algorithm.__name__}/{backend}"
            assert (
                text_result.independent_set == binary_result.independent_set
            ), name
            assert text_result.rounds == binary_result.rounds, name
            assert text_result.extras == binary_result.extras, name
            assert reader.stats.as_dict() == memmap.stats.as_dict(), (
                name,
                reader.stats.as_dict(),
                memmap.stats.as_dict(),
            )
            reader.close()
            memmap.close()


class TestSolverParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_gnm_files(self, seed, tmp_path):
        graph = erdos_renyi_gnm(220, 700 + 40 * seed, seed=seed)
        assert_binary_parity(graph, tmp_path)

    @pytest.mark.parametrize("seed", range(3))
    def test_plrg_files(self, seed, tmp_path):
        graph = plrg_graph_with_vertex_count(240, beta=2.2, seed=seed)
        assert_binary_parity(graph, tmp_path)

    def test_structured_graphs(self, tmp_path):
        assert_binary_parity(complete_graph(9), tmp_path)
        assert_binary_parity(star_graph(16), tmp_path)
        assert_binary_parity(empty_graph(11), tmp_path)
        assert_binary_parity(empty_graph(0), tmp_path)

    @pytest.mark.parametrize("block_size", [48, 4096, 64 * 1024])
    def test_block_sizes(self, block_size, tmp_path):
        graph = erdos_renyi_gnm(150, 450, seed=1)
        assert_binary_parity(graph, tmp_path, block_size=block_size)


class TestScanParity:
    def test_streaming_scan_records_and_charges(self, tmp_path):
        graph = erdos_renyi_gnm(200, 650, seed=5)
        reader, memmap = _open_pair(*_write_pair(graph, tmp_path))
        assert list(reader.scan()) == list(memmap.scan())
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        # A second scan hits the degree cache on both sides identically.
        assert list(reader.scan()) == list(memmap.scan())
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        assert reader.scan_order() == memmap.scan_order()
        reader.close()
        memmap.close()

    @staticmethod
    def _flatten(batches):
        records = []
        for vertices, offsets, targets in batches:
            for i, vertex in enumerate(vertices.tolist()):
                records.append(
                    (vertex, tuple(targets[offsets[i] : offsets[i + 1]].tolist()))
                )
        return records

    @pytest.mark.parametrize("batch_bytes", [None, 64, 777])
    def test_batched_scan_records_and_charges(self, batch_bytes, tmp_path):
        graph = erdos_renyi_gnm(200, 650, seed=6)
        reader, memmap = _open_pair(*_write_pair(graph, tmp_path))
        # First pass: the reader discovers record boundaries with fixed
        # size chunk reads, so batch *boundaries* may differ from the
        # memmap's byte-budget plan — the contract is identical records in
        # identical order with identical IOStats totals.
        assert self._flatten(reader.scan_batches(batch_bytes)) == self._flatten(
            memmap.scan_batches(batch_bytes)
        )
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        # Second pass: both sides batch from the cached degree plan, so
        # even the batch boundaries and array contents coincide.
        text_batches = list(reader.scan_batches(batch_bytes))
        binary_batches = list(memmap.scan_batches(batch_bytes))
        assert len(text_batches) == len(binary_batches)
        for text_batch, binary_batch in zip(text_batches, binary_batches):
            assert np.array_equal(text_batch.vertices, binary_batch.vertices)
            assert np.array_equal(text_batch.offsets, binary_batch.offsets)
            assert np.array_equal(text_batch.targets, binary_batch.targets)
            assert binary_batch.vertices.dtype == np.int64
            assert binary_batch.offsets.dtype == np.int64
            assert binary_batch.targets.dtype == np.int64
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        reader.close()
        memmap.close()

    def test_cold_random_lookup_charges_discovery_scan(self, tmp_path):
        graph = erdos_renyi_gnm(120, 380, seed=7)
        reader, memmap = _open_pair(*_write_pair(graph, tmp_path))
        assert reader.neighbors(11) == memmap.neighbors(11)
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        assert reader.neighbors(42) == memmap.neighbors(42)
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        assert memmap.stats.random_vertex_lookups == 2
        reader.close()
        memmap.close()

    def test_mid_scan_lookup_preserves_scan_accounting(self, tmp_path):
        graph = erdos_renyi_gnm(120, 380, seed=8)
        reader, memmap = _open_pair(*_write_pair(graph, tmp_path))
        text_iter, binary_iter = reader.scan(), memmap.scan()
        for _ in range(7):
            assert next(text_iter) == next(binary_iter)
        assert reader.neighbors(3) == memmap.neighbors(3)
        assert list(text_iter) == list(binary_iter)
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        reader.close()
        memmap.close()

    def test_degree_and_to_graph(self, tmp_path):
        graph = erdos_renyi_gnm(90, 260, seed=9)
        reader, memmap = _open_pair(*_write_pair(graph, tmp_path))
        text_graph = reader.to_graph()
        binary_graph = memmap.to_graph()
        assert text_graph.num_vertices == binary_graph.num_vertices
        assert text_graph.num_edges == binary_graph.num_edges
        for vertex in range(text_graph.num_vertices):
            assert text_graph.neighbors(vertex) == binary_graph.neighbors(vertex)
        assert reader.degree(5) == memmap.degree(5)
        assert reader.stats.as_dict() == memmap.stats.as_dict()
        reader.close()
        memmap.close()

    def test_unknown_vertex_raises(self, tmp_path):
        graph = erdos_renyi_gnm(40, 100, seed=10)
        _, binary_path = _write_pair(graph, tmp_path)
        with MemmapAdjacencySource(binary_path) as memmap:
            with pytest.raises(StorageError):
                memmap.neighbors(40)
            with pytest.raises(StorageError):
                memmap.neighbors(-1)

    def test_closed_source_raises(self, tmp_path):
        graph = erdos_renyi_gnm(30, 60, seed=11)
        _, binary_path = _write_pair(graph, tmp_path)
        memmap = MemmapAdjacencySource(binary_path)
        memmap.close()
        with pytest.raises(StorageError):
            list(memmap.scan())
        with pytest.raises(StorageError):
            memmap.neighbors(0)


class TestIntegrity:
    def _artifact(self, tmp_path, seed=0):
        graph = erdos_renyi_gnm(80, 240, seed=seed)
        return _write_pair(graph, tmp_path)[1]

    def test_header_round_trip(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        header = read_binary_header(binary_path)
        assert header.num_vertices == 80
        assert header.num_edges == 240
        assert os.path.getsize(binary_path) == binary_file_size(80, 240)

    def test_truncated_file_raises(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        size = os.path.getsize(binary_path)
        with open(binary_path, "r+b") as handle:
            handle.truncate(size - 5)
        with pytest.raises(BinaryCorruptError):
            MemmapAdjacencySource(binary_path)

    def test_truncated_header_raises(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        with open(binary_path, "r+b") as handle:
            handle.truncate(BINARY_HEADER_SIZE - 10)
        with pytest.raises(BinaryCorruptError):
            read_binary_header(binary_path)

    def test_flipped_section_byte_fails_verify(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        with open(binary_path, "r+b") as handle:
            handle.seek(BINARY_HEADER_SIZE + 3)
            byte = handle.read(1)
            handle.seek(BINARY_HEADER_SIZE + 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # The default open trusts the header; verify=True catches the rot.
        MemmapAdjacencySource(binary_path).close()
        with pytest.raises(BinaryCorruptError):
            MemmapAdjacencySource(binary_path, verify=True)
        source = MemmapAdjacencySource(binary_path)
        with pytest.raises(BinaryCorruptError):
            source.verify()
        source.close()

    def test_damaged_header_checksum_raises(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        with open(binary_path, "r+b") as handle:
            handle.seek(16)  # inside the num_vertices field
            handle.write(b"\xff")
        with pytest.raises(BinaryCorruptError):
            read_binary_header(binary_path)

    def test_version_mismatch_raises_typed_error(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        header = read_binary_header(binary_path)
        prefix = _HEADER_PREFIX.pack(
            BINARY_MAGIC,
            99,
            0,
            header.num_vertices,
            header.num_edges,
            bytes.fromhex(header.digest),
        )
        crc = zlib.crc32(prefix) & 0xFFFFFFFF
        with open(binary_path, "r+b") as handle:
            handle.write(prefix + struct.pack("<I", crc))
        with pytest.raises(BinaryVersionError) as excinfo:
            read_binary_header(binary_path)
        assert excinfo.value.found == 99
        assert excinfo.value.supported == 1

    def test_foreign_magic_raises(self, tmp_path):
        binary_path = self._artifact(tmp_path)
        with open(binary_path, "r+b") as handle:
            handle.write(b"NOTACSR!")
        with pytest.raises(BinaryFormatError):
            read_binary_header(binary_path)

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            read_binary_header(os.path.join(str(tmp_path), "absent.csr"))

    def test_writer_validation(self, tmp_path):
        path = os.path.join(str(tmp_path), "bad.csr")
        with pytest.raises(BinaryFormatError):
            write_binary_csr(path, [0, 1], [0, 1], [1])  # odd target count
        with pytest.raises(BinaryFormatError):
            write_binary_csr(path, [0, 1], [0, 1, 1, 1], [1, 0])  # bad indptr len
        with pytest.raises(BinaryFormatError):
            write_binary_csr(path, [0, 0], [0, 1, 2], [1, 0])  # not a permutation
        with pytest.raises(BinaryFormatError):
            write_binary_csr(path, [0, 1], [0, 1, 2], [1, 7])  # id out of range
        with pytest.raises(BinaryFormatError):
            write_binary_csr(path, [0, 1], [0, 2, 2], [1, 0], num_edges=9)
        assert not os.path.exists(path)


class TestIdentity:
    def test_digest_stable_across_reconversion(self, tmp_path):
        graph = erdos_renyi_gnm(70, 210, seed=3)
        text_path, binary_path = _write_pair(graph, tmp_path, name="a")
        first = read_binary_header(binary_path).digest
        adjacency_to_binary(text_path, binary_path)
        assert read_binary_header(binary_path).digest == first

    def test_digest_differs_between_graphs(self, tmp_path):
        _, path_a = _write_pair(erdos_renyi_gnm(70, 210, seed=3), tmp_path, "a")
        _, path_b = _write_pair(erdos_renyi_gnm(70, 210, seed=4), tmp_path, "b")
        assert read_binary_header(path_a).digest != read_binary_header(path_b).digest

    def test_binary_to_adjacency_is_the_inverse(self, tmp_path):
        graph = plrg_graph_with_vertex_count(130, beta=2.3, seed=2)
        text_path, binary_path = _write_pair(graph, tmp_path)
        restored_path = os.path.join(str(tmp_path), "restored.adj")
        binary_to_adjacency(binary_path, restored_path)
        with open(text_path, "rb") as original, open(restored_path, "rb") as restored:
            assert original.read() == restored.read()

    def test_registry_dispatches_both_formats(self, tmp_path):
        graph = erdos_renyi_gnm(50, 140, seed=5)
        text_path, binary_path = _write_pair(graph, tmp_path)
        text_source = open_adjacency_source(text_path)
        binary_source = open_adjacency_source(binary_path)
        assert isinstance(text_source, AdjacencyFileReader)
        assert isinstance(binary_source, MemmapAdjacencySource)
        text_source.close()
        binary_source.close()

    def test_registry_rejects_unknown_magic(self, tmp_path):
        path = os.path.join(str(tmp_path), "junk.bin")
        with open(path, "wb") as handle:
            handle.write(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(FormatError):
            open_adjacency_source(path)

    def test_as_scan_source_accepts_paths(self, tmp_path):
        graph = erdos_renyi_gnm(50, 140, seed=6)
        text_path, binary_path = _write_pair(graph, tmp_path)
        for path, expected in (
            (text_path, AdjacencyFileReader),
            (binary_path, MemmapAdjacencySource),
        ):
            source = as_scan_source(path)
            assert isinstance(source, expected)
            assert source.num_vertices == graph.num_vertices
            source.close()

    def test_vectorized_writer_matches_scalar_writer(self, tmp_path):
        import repro.storage.adjacency_file as adjacency_file

        for name, graph, sort in (
            ("gnm", erdos_renyi_gnm(150, 500, seed=12), True),
            ("nosort", erdos_renyi_gnm(150, 500, seed=13), False),
            ("isolated", empty_graph(7), True),
            ("empty", empty_graph(0), True),
        ):
            fast_path = os.path.join(str(tmp_path), f"{name}.fast")
            slow_path = os.path.join(str(tmp_path), f"{name}.slow")
            order = graph.degree_ascending_order()
            write_adjacency_file(
                graph, fast_path, order=order, sort_neighbors_by_degree=sort
            ).close()
            original = adjacency_file._write_records_vectorized
            adjacency_file._write_records_vectorized = lambda *a, **k: False
            try:
                write_adjacency_file(
                    graph, slow_path, order=order, sort_neighbors_by_degree=sort
                ).close()
            finally:
                adjacency_file._write_records_vectorized = original
            with open(fast_path, "rb") as fast, open(slow_path, "rb") as slow:
                assert fast.read() == slow.read(), name
