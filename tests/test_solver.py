"""Unit tests for the solver facade and its pipelines."""

from __future__ import annotations

import pytest

from repro.core.solver import PIPELINES, SemiExternalMISSolver, solve_mis
from repro.errors import SolverError
from repro.graphs.generators import erdos_renyi_gnm, star_graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.validation.checks import is_independent_set, is_maximal_independent_set


class TestPipelines:
    def test_all_declared_pipelines_run(self, medium_random_graph):
        sizes = {}
        for name in PIPELINES:
            result = solve_mis(medium_random_graph, pipeline=name)
            sizes[name] = result.size
            assert is_independent_set(medium_random_graph, result.independent_set)
            assert result.algorithm == name
        assert sizes["one_k_swap"] >= sizes["greedy"]
        assert sizes["two_k_swap"] >= sizes["greedy"]
        assert sizes["one_k_swap_after_baseline"] >= sizes["baseline"]
        assert sizes["two_k_swap_after_baseline"] >= sizes["baseline"]

    def test_unknown_pipeline_rejected(self, medium_random_graph):
        with pytest.raises(SolverError):
            solve_mis(medium_random_graph, pipeline="three_k_swap")

    def test_swap_pipelines_beat_baseline_on_skewed_graph(self):
        graph = plrg_graph_with_vertex_count(1_500, 2.0, seed=8)
        baseline = solve_mis(graph, pipeline="baseline")
        two_k = solve_mis(graph, pipeline="two_k_swap")
        assert two_k.size >= baseline.size

    def test_baseline_pipeline_uses_id_order(self):
        graph = star_graph(10)
        assert solve_mis(graph, pipeline="baseline").size == 1
        assert solve_mis(graph, pipeline="greedy").size == 10

    def test_swap_after_baseline_recovers_quality(self):
        # On the star, swapping after the baseline recovers the full leaf set.
        graph = star_graph(10)
        result = solve_mis(graph, pipeline="one_k_swap_after_baseline")
        assert result.size == 10

    def test_validate_flag_checks_result(self, medium_random_graph):
        solver = SemiExternalMISSolver(pipeline="two_k_swap", validate=True)
        result = solver.solve(medium_random_graph)
        assert is_maximal_independent_set(medium_random_graph, result.independent_set)

    def test_max_rounds_is_forwarded(self):
        graph = erdos_renyi_gnm(300, 1_000, seed=30)
        limited = SemiExternalMISSolver(pipeline="one_k_swap", max_rounds=1).solve(graph)
        assert limited.num_rounds <= 1

    def test_solver_accepts_file_reader(self, medium_random_graph):
        reader = AdjacencyFileReader(write_adjacency_file(medium_random_graph))
        result = solve_mis(reader, pipeline="two_k_swap")
        assert is_independent_set(medium_random_graph, result.independent_set)
        assert result.io.sequential_scans >= 2

    def test_result_reports_pipeline_level_io(self, medium_random_graph):
        result = solve_mis(medium_random_graph, pipeline="two_k_swap")
        # Greedy scan + swap-pass scans are all included.
        assert result.io.sequential_scans >= 3
        assert result.elapsed_seconds > 0
