"""The block-batched semi-external path and its parity guarantees.

Three claim groups are pinned here:

* the batched reader (``scan_batches``) yields exactly the records the
  streaming ``scan`` yields, with identical ``IOStats`` charges, for any
  block size / batch size / record order — including records straddling
  batch boundaries and the degree-run fast path vs. the scalar fallback;
* the numpy backend running over batched file scans returns bit-identical
  independent sets, round telemetry *and I/O counters* to the python
  reference streaming the same file;
* the vectorized two-k membership join matches the reference's
  dict-of-lists construction, and the oscillation guard stops
  ``max_rounds=None`` swap loops identically under both backends.
"""

from __future__ import annotations

import itertools
import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import greedy_mis, one_k_swap, solve_mis, two_k_swap
from repro.core.kernels.numpy_backend import _TwoKRound, _ADJ
from repro.core.kernels.sc_store import SwapCandidateStore
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi_gnm,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.io_stats import IOStats
from repro.storage.scan import InMemoryAdjacencyScan


def _fresh_reader(graph, block_size=4096, order=None):
    device = write_adjacency_file(
        graph, block_size=block_size, stats=IOStats(), order=order
    )
    return AdjacencyFileReader(device, stats=IOStats())


def _batched_records(reader, max_batch_bytes=None):
    records = []
    for vertices, offsets, targets in reader.scan_batches(max_batch_bytes):
        for i, vertex in enumerate(vertices.tolist()):
            records.append((vertex, tuple(targets[offsets[i] : offsets[i + 1]].tolist())))
    return records


class TestBatchedReader:
    @pytest.mark.parametrize("block_size", [32, 64, 4096, 64 * 1024])
    @pytest.mark.parametrize("batch_bytes", [None, 40, 333])
    def test_batches_reproduce_streaming_records(self, block_size, batch_bytes):
        graph = erdos_renyi_gnm(80, 220, seed=3)
        streaming = list(_fresh_reader(graph, block_size).scan())
        batched = _batched_records(_fresh_reader(graph, block_size), batch_bytes)
        assert batched == streaming

    @pytest.mark.parametrize("order_kind", ["degree", "id"])
    @pytest.mark.parametrize("block_size", [48, 64 * 1024])
    def test_io_charges_match_streaming_scan(self, order_kind, block_size):
        graph = plrg_graph_with_vertex_count(400, 2.1, seed=1)
        order = None if order_kind == "degree" else list(range(graph.num_vertices))
        streaming_reader = _fresh_reader(graph, block_size, order=order)
        for _ in streaming_reader.scan():
            pass
        batched_reader = _fresh_reader(graph, block_size, order=order)
        for _ in batched_reader.scan_batches():
            pass
        assert streaming_reader.stats.as_dict() == batched_reader.stats.as_dict()

    def test_second_pass_uses_degree_cache_and_stays_identical(self):
        graph = erdos_renyi_gnm(60, 150, seed=5)
        reader = _fresh_reader(graph, block_size=64)
        first = _batched_records(reader)
        assert reader._record_degrees is not None  # discover pass cached them
        second = _batched_records(reader)
        assert first == second
        assert reader.stats.sequential_scans == 2
        # Both passes read the same bytes.
        assert reader.stats.bytes_read % 2 == 0

    def test_streaming_scan_primes_the_batched_path(self):
        graph = erdos_renyi_gnm(40, 90, seed=8)
        reader = _fresh_reader(graph)
        streaming = list(reader.scan())
        assert _batched_records(reader) == streaming

    def test_batched_scan_primes_random_lookups_without_extra_scan(self):
        graph = erdos_renyi_gnm(40, 90, seed=9)
        reader = _fresh_reader(graph)
        for _ in reader.scan_batches():
            pass
        scans_before = reader.stats.sequential_scans
        vertex = reader.scan_order()[0]
        assert reader.neighbors(vertex) == graph.neighbors(vertex)
        assert reader.stats.sequential_scans == scans_before
        assert reader.stats.random_vertex_lookups == 1

    def test_first_lookup_mid_scan_leaves_scan_accounting_intact(self):
        # A first-ever lookup on an unindexed reader runs the
        # index-building scan inside the probe buffer: the interrupted
        # outer scan must resume sequentially, with no extra seek or
        # block re-charge beyond the lookup's own reads.
        graph = erdos_renyi_gnm(50, 120, seed=12)
        baseline = _fresh_reader(graph)
        records = list(baseline.scan())
        # Baseline stats include the 32-byte header read of the
        # constructor; the scan body itself is the remainder.
        scan_bytes = baseline.stats.bytes_read - 32

        reader = _fresh_reader(graph)
        iterator = reader.scan()
        for _ in range(3):
            next(iterator)
        vertex, neighbors = records[0]
        assert reader.neighbors(vertex) == neighbors
        for _ in iterator:
            pass
        # One outer scan + one index-building scan; one seek starting the
        # index scan mid-stream + one for the probe read; the outer scan
        # resumes without a third.
        assert reader.stats.sequential_scans == 2
        assert reader.stats.random_seeks == 2
        lookup_bytes = 8 + 4 * len(neighbors)
        assert reader.stats.bytes_read == 32 + 2 * scan_bytes + lookup_bytes

    def test_empty_graph_and_isolated_vertices(self):
        for graph in (empty_graph(0), empty_graph(5), star_graph(4)):
            reader = _fresh_reader(graph, block_size=32)
            assert _batched_records(reader) == list(_fresh_reader(graph, 32).scan())
            assert reader.stats.sequential_scans == 1

    def test_record_larger_than_batch_size(self):
        graph = star_graph(50)  # centre record spans many tiny batches
        reader = _fresh_reader(graph, block_size=32)
        assert _batched_records(reader, max_batch_bytes=40) == list(
            _fresh_reader(graph, 32).scan()
        )

    def test_in_memory_scan_batches_match_scan(self):
        graph = plrg_graph_with_vertex_count(200, 2.0, seed=2)
        for order in ("degree", "id"):
            source = InMemoryAdjacencyScan(graph, order=order)
            streaming = list(InMemoryAdjacencyScan(graph, order=order).scan())
            batched = []
            for vertices, offsets, targets in source.scan_batches(max_batch_bytes=256):
                for i, vertex in enumerate(vertices.tolist()):
                    batched.append(
                        (vertex, tuple(targets[offsets[i] : offsets[i + 1]].tolist()))
                    )
            assert batched == streaming
            assert source.stats.sequential_scans == 1


def _solve_file(graph, algorithm, backend, block_size=4096, order=None, **kwargs):
    reader = _fresh_reader(graph, block_size=block_size, order=order)
    result = algorithm(reader, backend=backend, **kwargs)
    reader.close()
    return result


def assert_semi_external_parity(graph, block_size=4096, order=None, max_rounds=8):
    """Both backends over the same file: same sets, telemetry and IOStats."""

    for algorithm, kwargs in (
        (greedy_mis, {}),
        (one_k_swap, {"max_rounds": max_rounds}),
        (two_k_swap, {"max_rounds": max_rounds}),
    ):
        python_result = _solve_file(
            graph, algorithm, "python", block_size, order, **kwargs
        )
        numpy_result = _solve_file(
            graph, algorithm, "numpy", block_size, order, **kwargs
        )
        name = algorithm.__name__
        assert python_result.independent_set == numpy_result.independent_set, name
        assert python_result.rounds == numpy_result.rounds, name
        assert python_result.extras == numpy_result.extras, name
        assert python_result.io == numpy_result.io, (
            name,
            python_result.io.as_dict(),
            numpy_result.io.as_dict(),
        )


class TestSemiExternalParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_gnm_files(self, seed):
        n = 30 + (seed * 17) % 80
        m = (seed * 23) % (3 * n)
        graph = erdos_renyi_gnm(n, min(m, n * (n - 1) // 2), seed=seed)
        block_size = (32, 128, 64 * 1024)[seed % 3]
        assert_semi_external_parity(graph, block_size=block_size)

    @pytest.mark.parametrize("seed", range(6))
    def test_plrg_files(self, seed):
        graph = plrg_graph_with_vertex_count(150 + 20 * seed, 1.9 + 0.1 * seed, seed=seed)
        assert_semi_external_parity(graph, block_size=64 if seed % 2 else 4096)

    @pytest.mark.parametrize("seed", range(4))
    def test_id_order_files_use_scalar_fallback(self, seed):
        graph = erdos_renyi_gnm(90, 260, seed=seed)
        assert_semi_external_parity(
            graph, block_size=96, order=list(range(graph.num_vertices))
        )

    def test_structured_graphs(self):
        for graph in (star_graph(9), complete_graph(8), empty_graph(6), empty_graph(0)):
            assert_semi_external_parity(graph, block_size=32)

    def test_two_k_lookup_io_parity(self):
        # A graph where two-k re-verification lookups actually fire, so the
        # probe-buffer accounting is exercised on both backends.
        for seed in range(8):
            graph = erdos_renyi_gnm(70, 130, seed=seed)
            python_result = _solve_file(graph, two_k_swap, "python", max_rounds=8)
            if python_result.io.random_vertex_lookups:
                numpy_result = _solve_file(graph, two_k_swap, "numpy", max_rounds=8)
                assert python_result.io == numpy_result.io
                break

    def test_file_results_match_in_memory_same_order(self):
        graph = plrg_graph_with_vertex_count(250, 2.1, seed=3)
        reader = _fresh_reader(graph)
        file_result = two_k_swap(reader, backend="numpy", max_rounds=5)
        in_memory = two_k_swap(
            graph, order=reader.scan_order(), backend="numpy", max_rounds=5
        )
        assert file_result.independent_set == in_memory.independent_set
        assert file_result.rounds == in_memory.rounds
        reader.close()

    def test_solver_pipelines_on_files(self):
        graph = plrg_graph_with_vertex_count(180, 2.2, seed=6)
        for pipeline in ("greedy", "one_k_swap", "two_k_swap"):
            python_result = solve_mis(
                _fresh_reader(graph), pipeline=pipeline, backend="python", max_rounds=6
            )
            numpy_result = solve_mis(
                _fresh_reader(graph), pipeline=pipeline, backend="numpy", max_rounds=6
            )
            assert python_result.independent_set == numpy_result.independent_set
            assert python_result.io == numpy_result.io


def _reference_members(state, isn1, isn2, num_vertices):
    """The python backend's dict-of-lists membership build."""

    members = {w: [] for w in range(num_vertices)}
    for v in range(num_vertices):
        if state[v] != _ADJ:
            continue
        members[isn1[v]].append(v)
        if isn2[v] >= 0:
            members[isn2[v]].append(v)
    return members


class TestVectorizedMembershipJoin:
    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_join_matches_reference_dict_build(self, n, seed):
        rng = random.Random(seed)
        state = np.zeros(n, dtype=np.uint8)
        isn1 = np.full(n, -1, dtype=np.int64)
        isn2 = np.full(n, -1, dtype=np.int64)
        for v in range(n):
            if rng.random() < 0.5:
                state[v] = _ADJ
                anchors = rng.sample(range(n), k=min(n, rng.choice((1, 1, 2))))
                isn1[v] = min(anchors)
                if len(anchors) == 2 and anchors[0] != anchors[1]:
                    isn2[v] = max(anchors)
        ctx = _TwoKRound(
            n, state, isn1, isn2, SwapCandidateStore(), source=None, max_partner_checks=64
        )
        reference = _reference_members(state, isn1, isn2, n)
        for anchor in range(n):
            lo, hi = ctx.mem_starts[anchor], ctx.mem_starts[anchor + 1]
            assert ctx.mem_sorted[lo:hi].tolist() == reference[anchor]
        singles = [
            v for v in range(n) if state[v] == _ADJ and isn2[v] < 0 and isn1[v] >= 0
        ]
        expected = np.bincount([isn1[v] for v in singles], minlength=n)
        assert ctx.single_count.tolist() == expected.tolist()


def _oscillating_graph():
    """A G(24, 236) instance whose one-k-swap loop cycles forever unguarded."""

    pairs = list(itertools.combinations(range(24), 2))
    edges = random.Random(168).sample(pairs, 236)
    return Graph(24, edges)


class TestOscillationGuard:
    def test_unbounded_one_k_swap_terminates_with_flag(self):
        graph = _oscillating_graph()
        results = {}
        for backend in ("python", "numpy"):
            result = one_k_swap(
                graph, order="degree", max_rounds=None, backend=backend
            )
            assert result.extras.get("oscillation_guard") == 1.0
            results[backend] = result
        assert results["python"].independent_set == results["numpy"].independent_set
        assert results["python"].rounds == results["numpy"].rounds

    def test_guard_silent_on_terminating_runs(self):
        graph = erdos_renyi_gnm(120, 300, seed=4)
        for backend in ("python", "numpy"):
            one_k = one_k_swap(graph, max_rounds=None, backend=backend)
            assert "oscillation_guard" not in one_k.extras
        two_k = two_k_swap(plrg_graph_with_vertex_count(150, 2.1, seed=1), max_rounds=8)
        assert "oscillation_guard" not in two_k.extras

    def test_bounded_runs_never_engage_the_guard(self):
        graph = _oscillating_graph()
        for backend in ("python", "numpy"):
            result = one_k_swap(graph, order="degree", max_rounds=12, backend=backend)
            assert result.num_rounds == 12
            assert "oscillation_guard" not in result.extras
