"""Observability layer tests: metrics registry, tracer, journal, wiring.

The contracts under test:

* registry merge is a deterministic fold — one :meth:`merge` call gives
  bit-identical snapshots regardless of the order its snapshot
  arguments are passed in (integer counters add exactly, float sums go
  through a single ``fsum``);
* histogram bucket edges are fixed at first observation and survive
  snapshot/merge unchanged — a mismatch is an error, never silent
  re-bucketing;
* instrumentation never changes results: an instrumented engine run and
  parallel runs under ``--workers 1/2/4`` produce the same independent
  set and the same integer solver counters;
* the journal/trace files round-trip through their readers
  (``validate_trace``, ``read_journal``, ``follow_journal``) including
  torn trailing lines from a killed writer;
* the service journals a merged per-job lifecycle timeline and
  ``submit --follow`` tails it to completion.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.cli import main
from repro.graphs.generators import erdos_renyi_gnm
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    NULL_OBS,
    Observability,
    SpanTracer,
    append_event,
    follow_journal,
    read_journal,
    validate_trace,
)
from repro.core.solver import solve_mis
from repro.pipeline.stream import StreamSession
from repro.service import ServiceClient, ServiceConfig, SolverService
from repro.service.metrics import build_service_registry
from repro.storage.adjacency_file import write_adjacency_file


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total")
        registry.inc("jobs_total", 2)
        registry.inc("jobs_total", state="done")
        assert registry.value("jobs_total") == 3
        assert registry.value("jobs_total", state="done") == 1
        assert registry.value("missing") == 0

    def test_advance_returns_delta_and_is_monotonic(self):
        registry = MetricsRegistry()
        assert registry.advance("evictions_total", 5) == 5
        assert registry.advance("evictions_total", 9) == 4
        # At-or-below the current total is a no-op, never a decrement.
        assert registry.advance("evictions_total", 9) == 0
        assert registry.advance("evictions_total", 3) == 0
        assert registry.value("evictions_total") == 9

    def test_gauge_merge_takes_maximum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("depth", 4)
        b.set_gauge("depth", 7)
        a.merge(b.snapshot())
        assert a.value("depth") == 7
        b.set_gauge("depth", 1)
        a.merge(b.snapshot())
        assert a.value("depth") == 7

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        edges = (0.1, 1.0, 10.0)
        for value in (0.05, 0.5, 5.0, 50.0):
            registry.observe("seconds", value, buckets=edges)
        [entry] = registry.snapshot()["series"]
        assert entry["kind"] == "histogram"
        assert entry["buckets"] == [0.1, 1.0, 10.0]
        assert entry["counts"] == [1, 1, 1, 1]  # one overflow past +Inf edge
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(55.55)

    def test_histogram_edges_fixed_at_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.2, buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="bucket edges changed"):
            registry.observe("seconds", 0.2, buckets=(0.5, 1.0))

    def test_histogram_edge_mismatch_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("seconds", 0.2, buckets=(0.1, 1.0))
        b.observe("seconds", 0.2, buckets=(0.5, 1.0))
        with pytest.raises(ValueError, match="bucket edges mismatch"):
            a.merge(b.snapshot())

    def test_snapshot_from_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.describe("runs_total", "completed runs")
        registry.inc("runs_total", 3, pipeline="greedy")
        registry.set_gauge("size", 17)
        registry.observe("seconds", 0.42)
        snapshot = registry.snapshot()
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.snapshot() == snapshot
        # The snapshot is JSON-serialisable as-is (what --metrics-out dumps).
        assert MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snapshot))
        ).snapshot() == snapshot

    def test_merge_is_permutation_invariant(self):
        """One merge call folds shuffled snapshots to identical bits."""

        rng = random.Random(20150831)
        snapshots = []
        for _ in range(8):
            child = MetricsRegistry()
            for _ in range(40):
                child.inc("ops_total", rng.randrange(1, 100), op="insert")
                child.inc("bytes_total", rng.random() * 1e6)
                child.observe("seconds", rng.random() * 3)
            snapshots.append(child.snapshot())

        def fold(order):
            parent = MetricsRegistry()
            parent.merge(*(snapshots[i] for i in order))
            return parent.snapshot()

        reference = fold(range(len(snapshots)))
        for _ in range(5):
            order = list(range(len(snapshots)))
            rng.shuffle(order)
            assert fold(order) == reference
        # Integer counters stay exact integers through the fold.
        merged = MetricsRegistry.from_snapshot(reference)
        assert isinstance(merged.value("ops_total", op="insert"), int)

    def test_render_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.describe("runs_total", "completed runs")
        registry.inc("runs_total", 2, pipeline="greedy")
        registry.set_gauge("size", 17)
        registry.observe("seconds", 0.003, buckets=(0.001, 0.01))
        registry.observe("seconds", 5.0, buckets=(0.001, 0.01))
        text = registry.render_prometheus()
        assert '# HELP runs_total completed runs' in text
        assert '# TYPE runs_total counter' in text
        assert 'runs_total{pipeline="greedy"} 2' in text
        assert '# TYPE size gauge' in text
        # Cumulative buckets end with the implicit +Inf edge.
        assert 'seconds_bucket{le="0.001"} 0' in text
        assert 'seconds_bucket{le="0.01"} 1' in text
        assert 'seconds_bucket{le="+Inf"} 2' in text
        assert 'seconds_count 2' in text
        assert text.endswith("\n")

    def test_render_rows_table(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", pipeline="greedy")
        registry.observe("seconds", 0.5)
        rows = {row[0]: row for row in registry.render_rows()}
        assert rows["runs_total{pipeline=greedy}"][1] == "counter"
        assert rows["seconds"][1] == "histogram"
        assert "count=1" in rows["seconds"][2]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_spans_validate_and_round_trip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("stage:greedy", "stage", args={"size": 10}):
            pass
        tracer.instant("pass:greedy", "kernel")
        tracer.add_span("round:two_k_swap", "round", tracer.now(), tracer.now())
        document = tracer.to_document()
        assert validate_trace(document) == []
        names = [event["name"] for event in document["traceEvents"]]
        assert names[0] == "process_name"  # metadata first
        assert "stage:greedy" in names and "round:two_k_swap" in names

        path = tmp_path / "trace.json"
        tracer.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == document
        assert loaded["displayTimeUnit"] == "ms"

    def test_validate_trace_flags_malformed_events(self):
        assert validate_trace({}) == ["traceEvents missing or not a list"]
        problems = validate_trace(
            {
                "traceEvents": [
                    {"ph": "X", "name": "s", "pid": 1, "tid": 0, "ts": -1, "dur": 2},
                    {"ph": "?", "name": "s", "pid": 1, "tid": 0},
                    "not-an-object",
                ]
            }
        )
        assert len(problems) == 3


# ----------------------------------------------------------------------
# Event journal
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_emit_read_round_trip(self, tmp_path):
        path = str(tmp_path / "journal" / "job.jsonl")
        with EventJournal(path) as journal:
            journal.emit("run_start", pipeline="greedy")
            journal.emit("run_end", size=42)
        append_event(path, "job_done", job_id="j1")
        records = read_journal(path)
        assert [r["event"] for r in records] == ["run_start", "run_end", "job_done"]
        assert all(r["v"] == 1 and "ts" in r for r in records)
        assert records[1]["size"] == 42

    def test_reader_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "job.jsonl"
        append_event(str(path), "run_start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "event": "trunc')  # killed mid-write
        assert [r["event"] for r in read_journal(str(path))] == ["run_start"]

    def test_follow_drains_after_stop(self, tmp_path):
        path = str(tmp_path / "job.jsonl")
        append_event(path, "first")
        append_event(path, "second")
        events = [
            record["event"]
            for record in follow_journal(path, stop=lambda: True)
        ]
        assert events == ["first", "second"]

    def test_follow_times_out(self, tmp_path):
        ticks = iter(float(i) for i in range(100))
        with pytest.raises(TimeoutError):
            list(
                follow_journal(
                    str(tmp_path / "absent.jsonl"),
                    timeout_seconds=2.0,
                    clock=lambda: next(ticks),
                    sleep=lambda _: None,
                )
            )


# ----------------------------------------------------------------------
# Engine + kernels + parallel wiring
# ----------------------------------------------------------------------
def _solver_counters(registry):
    """Integer solver-work counters that must be worker-count invariant."""

    counters = {}
    for entry in registry.snapshot()["series"]:
        name = entry["name"]
        if entry["kind"] != "counter":
            continue
        if name.startswith(("repro_stage_", "repro_rounds", "repro_kernel_")):
            labels = tuple(sorted(entry["labels"].items()))
            counters[(name, labels)] = entry["value"]
    return counters


class TestEngineObservability:
    def test_instrumented_run_matches_plain_run(self, tmp_path):
        graph = erdos_renyi_gnm(300, 900, seed=7)
        plain = solve_mis(graph, pipeline="two_k_swap", backend="python")
        journal_path = str(tmp_path / "run.jsonl")
        obs = Observability(
            registry=MetricsRegistry(),
            tracer=SpanTracer(),
            journal=EventJournal(journal_path),
        )
        observed = solve_mis(graph, pipeline="two_k_swap", backend="python", obs=obs)
        obs.close()

        assert observed.independent_set == plain.independent_set
        assert observed.num_rounds == plain.num_rounds

        document = obs.tracer.to_document()
        assert validate_trace(document) == []
        names = [event["name"] for event in document["traceEvents"]]
        # A span per stage, at least one swap round, and the run span.
        assert "stage:greedy" in names
        assert "stage:two_k_swap" in names
        assert any(name.startswith("round:") for name in names)
        assert "pipeline:two_k_swap" in names
        assert any(name.startswith("pass:") for name in names)

        registry = obs.registry
        assert registry.value("repro_stage_runs_total", stage="greedy") == 1
        assert registry.value("repro_stage_runs_total", stage="two_k_swap") == 1
        rounds = registry.value("repro_rounds_total", stage="two_k_swap")
        assert rounds == observed.num_rounds
        assert registry.value("repro_result_size", pipeline="two_k_swap") == len(
            observed.independent_set
        )

        events = [record["event"] for record in read_journal(journal_path)]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert events.count("stage_start") == events.count("stage_end") == 2

    def test_null_obs_records_nothing(self):
        graph = erdos_renyi_gnm(120, 300, seed=3)
        result = solve_mis(graph, pipeline="greedy", obs=NULL_OBS)
        assert result.size > 0
        assert NULL_OBS.registry.snapshot()["series"] == []
        assert NULL_OBS.tracer.to_document()["traceEvents"] == []

    def test_solver_counters_identical_across_worker_counts(self):
        pytest.importorskip("numpy")
        graph = erdos_renyi_gnm(400, 1600, seed=9)

        def run(workers):
            obs = Observability(registry=MetricsRegistry())
            result = solve_mis(
                graph,
                pipeline="two_k_swap",
                backend="numpy",
                workers=workers,
                obs=obs,
            )
            return result.independent_set, _solver_counters(obs.registry)

        baseline_set, baseline_counters = run(1)
        assert baseline_counters  # non-empty: the restriction keeps real series
        for workers in (2, 4):
            mis, counters = run(workers)
            assert mis == baseline_set
            assert counters == baseline_counters


# ----------------------------------------------------------------------
# Stream wiring
# ----------------------------------------------------------------------
class TestStreamObservability:
    @pytest.fixture
    def stream_inputs(self, tmp_path):
        graph = erdos_renyi_gnm(140, 420, seed=4)
        rng = random.Random(8)
        lines = []
        for _ in range(600):
            u, v = rng.randrange(140), rng.randrange(140)
            if u != v:
                lines.append(f"{'+' if rng.random() < 0.6 else '-'} {u} {v}")
        updates = tmp_path / "updates.txt"
        updates.write_text("\n".join(lines) + "\n")
        return graph, str(updates)

    def test_session_mirrors_totals_into_registry(self, stream_inputs, tmp_path):
        graph, updates = stream_inputs
        journal_path = str(tmp_path / "stream.jsonl")
        obs = Observability(
            registry=MetricsRegistry(),
            tracer=SpanTracer(),
            journal=EventJournal(journal_path),
        )
        session = StreamSession(graph, updates, batch_size=100, obs=obs)
        reports = list(session.process())
        obs.close()

        registry = obs.registry
        assert registry.value("repro_stream_batches_total") == len(reports)
        # Submitted ops are counted per batch; applied-edge totals come
        # from the mirrored maintainer stats (dedup drops no-op updates).
        submitted = registry.value(
            "repro_stream_updates_total", op="insert"
        ) + registry.value("repro_stream_updates_total", op="delete")
        assert submitted == sum(r.insertions + r.deletions for r in reports)
        stats = session.maintainer.stats
        assert (
            registry.value("repro_stream_edges_inserted_total")
            == stats.edges_inserted
        )
        assert registry.value("repro_stream_evictions_total") == stats.evictions

        summary = session.result()
        assert summary["wave"] == session.maintainer.wave.snapshot()
        assert summary["conflict_density"] == pytest.approx(
            stats.evictions / (stats.edges_inserted + stats.edges_deleted)
        )
        # Per-batch report deltas fall out of the registry mirror.
        assert sum(report.evictions for report in reports) == stats.evictions

        document = obs.tracer.to_document()
        assert validate_trace(document) == []
        names = [event["name"] for event in document["traceEvents"]]
        assert sum(name.startswith("batch:") for name in names) == len(reports)

        events = [record["event"] for record in read_journal(journal_path)]
        assert events[0] == "stream_start"
        assert events.count("batch") == len(reports)

    def test_empty_stream_guards_ratios(self, tmp_path):
        graph = erdos_renyi_gnm(50, 120, seed=2)
        updates = tmp_path / "empty.txt"
        updates.write_text("")
        session = StreamSession(graph, str(updates))
        assert list(session.process()) == []
        summary = session.result()
        assert summary["conflict_density"] == 0.0
        assert summary["batches_applied"] == 0


# ----------------------------------------------------------------------
# Service journal + store-derived metrics + submit --follow
# ----------------------------------------------------------------------
@pytest.fixture
def service_inputs(tmp_path):
    graph = erdos_renyi_gnm(250, 700, seed=11)
    path = str(tmp_path / "g.adj")
    write_adjacency_file(graph, path).close()
    return path


def _fast_config():
    return ServiceConfig(
        workers=2, poll_interval_seconds=0.02, checkpoint_every_seconds=None
    )


class TestServiceObservability:
    def test_job_lifecycle_journal_and_store_metrics(self, service_inputs, tmp_path):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        spec_payload = {
            "pipeline": "two_k_swap",
            "input": service_inputs,
            "max_rounds": 2,
        }
        from repro.pipeline.spec import RunSpec

        record = client.submit(RunSpec.from_dict(spec_payload))
        service = SolverService(root, _fast_config())
        try:
            service.drain(timeout_seconds=120.0)
        finally:
            service.stop()

        events = [
            entry["event"]
            for entry in read_journal(client.store.journal_path(record.job_id))
        ]
        # Client, scheduler, and worker all append to one merged timeline.
        for expected in (
            "job_queued",
            "job_running",
            "attempt_start",
            "run_start",
            "stage_start",
            "stage_end",
            "run_end",
            "job_done",
        ):
            assert expected in events, f"missing {expected} in {events}"
        assert events[0] == "job_queued"
        assert events.index("job_queued") < events.index("attempt_start")

        # Scheduler counters on the live service registry.
        assert service.metrics.value("repro_service_workers_started_total") == 1
        assert service.metrics.value("repro_service_scheduler_passes_total") >= 1

        # The store-derived registry replays persisted stage summaries
        # through the same StageReport projection the engine uses live.
        registry = build_service_registry(client.store)
        assert registry.value("repro_service_jobs", state="done") == 1
        assert registry.value("repro_service_jobs", state="queued") == 0
        assert registry.value("repro_stage_runs_total", stage="greedy") == 1
        assert registry.value("repro_cache_entries") == 1
        text = registry.render_prometheus()
        assert "repro_service_jobs" in text
        assert 'repro_stage_seconds_bucket' in text
        assert "repro_cache_entries" in text

    def test_submit_follow_streams_to_terminal_state(
        self, service_inputs, tmp_path, capsys
    ):
        root = str(tmp_path / "svc")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {"pipeline": "greedy", "input": service_inputs}
            )
        )

        stop = threading.Event()

        def pump():
            service = SolverService(root, _fast_config())
            try:
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline and not stop.is_set():
                    service.run_once()
                    records = service.store.list()
                    if records and all(r.is_terminal() for r in records):
                        return
                    time.sleep(0.02)
            finally:
                service.stop()

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        try:
            code = main(
                ["submit", root, "--config", str(spec_path), "--follow"]
            )
        finally:
            stop.set()
            thread.join(timeout=120.0)
        assert code == 0
        out = capsys.readouterr().out
        assert "[job_queued]" in out
        assert "[job_done]" in out
        assert "done" in out  # final status table reflects the terminal state

    def test_metrics_cli_over_directory_and_snapshot(
        self, service_inputs, tmp_path, capsys
    ):
        root = str(tmp_path / "svc")
        client = ServiceClient(root)
        from repro.pipeline.spec import RunSpec

        client.submit(
            RunSpec.from_dict({"pipeline": "greedy", "input": service_inputs})
        )
        service = SolverService(root, _fast_config())
        try:
            service.drain(timeout_seconds=120.0)
        finally:
            service.stop()

        assert main(["metrics", root, "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_service_jobs gauge" in text
        assert 'repro_service_jobs{state="done"} 1' in text

        assert main(["metrics", root, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.value("repro_service_jobs", state="done") == 1

        snap_path = tmp_path / "metrics.json"
        snap_path.write_text(json.dumps(snapshot))
        assert main(["metrics", str(snap_path)]) == 0
        assert "repro_service_jobs{state=done}" in capsys.readouterr().out

        assert main(["metrics", str(tmp_path / "nope.json")]) == 2
