"""Tests of the stage-based pipeline engine, specs and execution context.

The parity classes are the acceptance gate of the engine refactor: every
facade pipeline must produce the bit-identical independent set, per-round
telemetry and I/O counters of the hand-chained passes it replaced.
"""

from __future__ import annotations

import json

import pytest

from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.core.solver import PIPELINES, solve_mis
from repro.core.two_k_swap import two_k_swap
from repro.baselines.dynamic_update import dynamic_update_mis
from repro.baselines.local_search import local_search_mis
from repro.errors import PipelineSpecError
from repro.graphs.generators import erdos_renyi_gnm, star_graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.pipeline.context import ExecutionContext, resolve_backend_request
from repro.pipeline.engine import PipelineEngine, decode_result, encode_result
from repro.pipeline.spec import BUILTIN_PIPELINES, PipelineSpec, RunSpec, StageSpec
from repro.pipeline.stages import available_stages, get_stage
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.io_stats import IOStats
from repro.validation.checks import is_independent_set, is_maximal_independent_set

BACKENDS = ("python", "numpy")


# ----------------------------------------------------------------------
# Declarative specs
# ----------------------------------------------------------------------
class TestSpecs:
    def test_pipeline_spec_round_trip(self):
        spec = PipelineSpec(
            name="custom",
            stages=(
                StageSpec("greedy"),
                StageSpec("two_k_swap", {"max_rounds": 2, "max_pairs_per_key": 4}),
            ),
        )
        again = PipelineSpec.from_json(spec.to_json())
        assert again == spec
        assert again.stage_names() == ("greedy", "two_k_swap")

    def test_stage_shorthand_string(self):
        spec = PipelineSpec.from_dict({"name": "p", "stages": ["greedy", "one_k_swap"]})
        assert spec.stage_names() == ("greedy", "one_k_swap")

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "must be a JSON object"),
            ({"stages": ["greedy"]}, "non-empty 'name'"),
            ({"name": "p"}, "non-empty 'stages'"),
            ({"name": "p", "stages": []}, "non-empty 'stages'"),
            ({"name": "p", "stages": [{}]}, "non-empty 'stage' name"),
            ({"name": "p", "stages": [{"stage": "greedy", "bogus": 1}]}, "unknown keys"),
            ({"name": "p", "stages": ["greedy"], "extra": 1}, "unknown keys"),
        ],
    )
    def test_malformed_pipeline_specs(self, payload, message):
        with pytest.raises(PipelineSpecError, match=message):
            PipelineSpec.from_dict(payload)

    def test_builtin_table_matches_paper_compositions(self):
        assert PIPELINES is BUILTIN_PIPELINES
        assert PIPELINES["one_k_swap"].stage_names() == ("greedy", "one_k_swap")
        assert PIPELINES["two_k_swap_after_baseline"].stage_names() == (
            "baseline",
            "two_k_swap",
        )
        assert PIPELINES["reduce_two_k_swap"].stage_names() == (
            "reduce",
            "greedy",
            "two_k_swap",
        )
        for name, spec in PIPELINES.items():
            assert spec.name == name
            for stage in spec.stage_names():
                assert stage in available_stages()

    def test_unknown_stage_rejected_at_engine_construction(self):
        spec = PipelineSpec.chain("bad", "greedy", "three_k_swap")
        with pytest.raises(PipelineSpecError, match="unknown stage 'three_k_swap'"):
            PipelineEngine(spec)

    def test_unknown_stage_option_rejected(self):
        spec = PipelineSpec(
            name="bad", stages=(StageSpec("greedy", {"max_rounds": 3}),)
        )
        with pytest.raises(PipelineSpecError, match="does not accept option"):
            PipelineEngine(spec)

    def test_run_spec_round_trip(self, tmp_path):
        config = {
            "pipeline": {
                "name": "custom",
                "stages": [{"stage": "greedy"}, {"stage": "one_k_swap"}],
            },
            "input": "graph.adj",
            "backend": "numpy",
            "max_rounds": 3,
            "checkpoint": "ck.json",
        }
        path = tmp_path / "run.json"
        path.write_text(json.dumps(config))
        run_spec = RunSpec.from_path(str(path))
        assert run_spec.input == "graph.adj"
        assert run_spec.backend == "numpy"
        assert run_spec.max_rounds == 3
        assert run_spec.checkpoint == "ck.json"
        assert run_spec.pipeline.stage_names() == ("greedy", "one_k_swap")

    def test_run_spec_named_pipeline(self):
        run_spec = RunSpec.from_dict({"pipeline": "two_k_swap", "input": "g.adj"})
        assert run_spec.pipeline is BUILTIN_PIPELINES["two_k_swap"]

    def test_run_spec_folds_swap_knobs_into_two_k_stage(self):
        run_spec = RunSpec.from_dict(
            {
                "pipeline": "two_k_swap",
                "input": "g.adj",
                "max_pairs_per_key": 4,
                "max_partner_checks": 16,
            }
        )
        (greedy, two_k) = run_spec.pipeline.stages
        assert greedy.options == {}
        assert two_k.options == {"max_pairs_per_key": 4, "max_partner_checks": 16}
        # The folded knobs are part of the serialized spec (and hence any
        # cache key derived from it).
        encoded = run_spec.to_dict()["pipeline"]["stages"][1]
        assert encoded["options"] == {
            "max_pairs_per_key": 4,
            "max_partner_checks": 16,
        }

    def test_explicit_stage_options_beat_run_spec_knobs(self):
        run_spec = RunSpec.from_dict(
            {
                "pipeline": {
                    "name": "pinned",
                    "stages": [
                        {"stage": "greedy"},
                        {"stage": "two_k_swap", "options": {"max_pairs_per_key": 2}},
                    ],
                },
                "input": "g.adj",
                "max_pairs_per_key": 64,
                "max_partner_checks": 32,
            }
        )
        two_k = run_spec.pipeline.stages[1]
        assert two_k.options["max_pairs_per_key"] == 2  # the stage pins it
        assert two_k.options["max_partner_checks"] == 32  # the sweep fills it

    def test_swap_knobs_without_two_k_stage_rejected(self):
        with pytest.raises(PipelineSpecError, match="no 'two_k_swap' stage"):
            RunSpec.from_dict(
                {"pipeline": "greedy", "input": "g.adj", "max_pairs_per_key": 4}
            )

    @pytest.mark.parametrize("value", [0, -3, "many", 1.5])
    def test_swap_knobs_validated(self, value):
        with pytest.raises(PipelineSpecError):
            RunSpec.from_dict(
                {
                    "pipeline": "two_k_swap",
                    "input": "g.adj",
                    "max_partner_checks": value,
                }
            )

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"input": "g.adj"}, "missing 'pipeline'"),
            ({"pipeline": "nope", "input": "g.adj"}, "unknown named pipeline"),
            ({"pipeline": "greedy"}, "missing 'input'"),
            ({"pipeline": "greedy", "input": "g", "max_rounds": "x"}, "integer"),
            ({"pipeline": "greedy", "input": "g", "surprise": 1}, "unknown keys"),
        ],
    )
    def test_malformed_run_specs(self, payload, message):
        with pytest.raises(PipelineSpecError, match=message):
            RunSpec.from_dict(payload)

    def test_run_spec_unreadable_file(self, tmp_path):
        with pytest.raises(PipelineSpecError, match="cannot read run spec"):
            RunSpec.from_path(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
class TestExecutionContext:
    def test_resolve_backend_request(self):
        assert resolve_backend_request(None) is None
        assert resolve_backend_request("auto") is None
        assert resolve_backend_request("") is None
        assert resolve_backend_request("python") == "python"

    def test_materialize_graph_caches_reader_graphs(self):
        graph = erdos_renyi_gnm(50, 120, seed=1)
        reader = AdjacencyFileReader(write_adjacency_file(graph, backing=None))
        ctx = ExecutionContext.create(reader)
        first = ctx.materialize_graph()
        assert ctx.materialize_graph() is first
        assert first == graph

    def test_in_memory_graph_is_its_own_materialisation(self):
        graph = erdos_renyi_gnm(30, 60, seed=2)
        ctx = ExecutionContext.create(graph)
        assert ctx.materialize_graph() is graph
        assert ctx.original_graph is graph


# ----------------------------------------------------------------------
# Facade parity: engine output == hand-chained passes (the pre-refactor
# orchestration), per backend.
# ----------------------------------------------------------------------
def _chained_reference(graph, pipeline, backend, max_rounds=None):
    """The exact pass chaining the solver facade performed before the engine."""

    stats = IOStats()
    from repro.storage.scan import InMemoryAdjacencyScan

    order = "id" if pipeline.startswith("baseline") or "after_baseline" in pipeline else "degree"
    source = InMemoryAdjacencyScan(graph, order=order, stats=stats)
    first = greedy_mis(source, backend=backend)
    names = PIPELINES[pipeline].stage_names()
    result = first
    for name in names[1:]:
        runner = one_k_swap if name == "one_k_swap" else two_k_swap
        result = runner(source, initial=result, max_rounds=max_rounds, backend=backend)
    return result, stats


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "pipeline",
    [
        "greedy",
        "baseline",
        "one_k_swap",
        "two_k_swap",
        "one_k_swap_after_baseline",
        "two_k_swap_after_baseline",
    ],
)
class TestFacadeParity:
    def test_sets_rounds_and_io_match_hand_chaining(self, pipeline, backend):
        graph = plrg_graph_with_vertex_count(400, 2.0, seed=11)
        engine_result = solve_mis(graph, pipeline=pipeline, backend=backend)
        reference, stats = _chained_reference(graph, pipeline, backend)
        assert engine_result.independent_set == reference.independent_set
        assert engine_result.rounds == reference.rounds
        assert engine_result.io.as_dict() == stats.as_dict()
        assert engine_result.initial_size == reference.initial_size
        assert engine_result.memory_bytes == reference.memory_bytes

    def test_stage_reports_cover_every_stage(self, pipeline, backend):
        graph = erdos_renyi_gnm(150, 450, seed=4)
        result = solve_mis(graph, pipeline=pipeline, backend=backend)
        stages = result.extras["stages"]
        assert [entry["stage"] for entry in stages] == list(
            PIPELINES[pipeline].stage_names()
        )
        # Per-stage I/O deltas add up to the run's cumulative counters.
        assert sum(s["io"]["sequential_scans"] for s in stages) == (
            result.io.sequential_scans
        )
        assert all(s["elapsed_seconds"] >= 0 for s in stages)
        assert stages[-1]["size"] == result.size


class TestBackendParityThroughEngine:
    @pytest.mark.parametrize("pipeline", sorted(PIPELINES))
    def test_backends_agree_on_every_builtin_pipeline(self, pipeline):
        graph = plrg_graph_with_vertex_count(250, 2.1, seed=9)
        results = {
            backend: solve_mis(graph, pipeline=pipeline, backend=backend)
            for backend in BACKENDS
        }
        assert (
            results["python"].independent_set == results["numpy"].independent_set
        )
        assert results["python"].rounds == results["numpy"].rounds


# ----------------------------------------------------------------------
# Reduce as a composable stage.
# ----------------------------------------------------------------------
class TestReducePipeline:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reduce_pipeline_solves_original_graph(self, backend):
        graph = plrg_graph_with_vertex_count(300, 2.3, seed=5)
        result = solve_mis(graph, pipeline="reduce_two_k_swap", backend=backend)
        assert is_independent_set(graph, result.independent_set)
        assert is_maximal_independent_set(graph, result.independent_set)
        greedy_size = solve_mis(graph, pipeline="greedy", backend=backend).size
        assert result.size >= greedy_size
        stages = result.extras["stages"]
        assert [s["stage"] for s in stages] == ["reduce", "greedy", "two_k_swap"]
        reduce_extras = stages[0]["extras"]
        assert reduce_extras["kernel_vertices"] <= graph.num_vertices
        assert reduce_extras["rule_applications"] >= 0
        # The artifact never leaks into reports or result extras.
        assert "__artifact__" not in reduce_extras
        assert "__artifact__" not in result.extras

    def test_reduce_on_star_graph_solves_exactly(self):
        graph = star_graph(12)
        result = solve_mis(graph, pipeline="reduce_two_k_swap")
        assert result.size == 12  # all leaves

    def test_reduce_only_pipeline_yields_forced_solution(self):
        graph = star_graph(6)
        spec = PipelineSpec.chain("reduce_only", "reduce")
        ctx = ExecutionContext.create(graph)
        result = PipelineEngine(spec).run(ctx)
        # The star is fully reducible: the forced picks alone solve it.
        assert is_independent_set(graph, result.independent_set)
        assert result.size == 6

    def test_comparator_stage_after_reduce_runs_on_kernel(self):
        graph = plrg_graph_with_vertex_count(200, 2.2, seed=3)
        spec = PipelineSpec.chain("reduce_ls", "reduce", "local_search")
        ctx = ExecutionContext.create(graph)
        result = PipelineEngine(spec).run(ctx)
        assert is_independent_set(graph, result.independent_set)


# ----------------------------------------------------------------------
# Comparator stages: identical to the direct baseline calls.
# ----------------------------------------------------------------------
class TestComparatorStages:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_local_search_stage_matches_direct_call(self, backend):
        graph = erdos_renyi_gnm(200, 700, seed=6)
        spec = PipelineSpec.chain("local_search", "local_search")
        ctx = ExecutionContext.create(graph, backend=backend)
        engine_result = PipelineEngine(spec).run(ctx)
        direct = local_search_mis(graph, backend=backend)
        assert engine_result.independent_set == direct.independent_set
        assert engine_result.extras["iterations"] == direct.extras["iterations"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dynamic_update_stage_matches_direct_call(self, backend):
        graph = erdos_renyi_gnm(200, 700, seed=6)
        spec = PipelineSpec.chain("dynamic_update", "dynamic_update")
        ctx = ExecutionContext.create(graph, backend=backend)
        engine_result = PipelineEngine(spec).run(ctx)
        direct = dynamic_update_mis(graph, backend=backend)
        assert engine_result.independent_set == direct.independent_set


# ----------------------------------------------------------------------
# Result codec used by the checkpoints.
# ----------------------------------------------------------------------
class TestResultCodec:
    def test_encode_decode_round_trip(self):
        graph = erdos_renyi_gnm(80, 250, seed=8)
        result = two_k_swap(graph, initial=greedy_mis(graph))
        again = decode_result(json.loads(json.dumps(encode_result(result))))
        assert again.independent_set == result.independent_set
        assert again.rounds == result.rounds
        assert again.io.as_dict() == result.io.as_dict()
        assert again.extras == result.extras
        assert again.initial_size == result.initial_size

    def test_get_stage_error_lists_available(self):
        with pytest.raises(PipelineSpecError, match="available:"):
            get_stage("warp_drive")


class TestSharedContextMaterialisation:
    def test_file_read_happens_once_across_runs_with_reduce(self):
        """The materialisation memo survives reduce's source replacement."""

        graph = erdos_renyi_gnm(120, 300, seed=31)
        reader = AdjacencyFileReader(write_adjacency_file(graph, backing=None))
        ctx = ExecutionContext.create(reader)
        PipelineEngine(PIPELINES["reduce_two_k_swap"]).run(ctx)
        scans_after_reduce_run = ctx.stats.sequential_scans
        PipelineEngine(PipelineSpec.chain("local_search", "local_search")).run(ctx)
        # local_search materialises the ORIGINAL file graph; the memo from
        # the reduce run's materialisation serves it without a new scan.
        assert ctx.stats.sequential_scans == scans_after_reduce_run
        assert ctx.source is reader  # runs leave the context as found
