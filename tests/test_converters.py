"""Unit tests for the text edge-list converters."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.errors import StorageError
from repro.graphs.generators import erdos_renyi_gnm
from repro.storage.adjacency_file import AdjacencyFileReader
from repro.storage.converters import (
    edge_list_file_to_graph,
    export_edge_list,
    graph_to_edge_list_file,
    import_edge_list,
)


class TestEdgeListParsing:
    def test_roundtrip_through_text(self, tmp_path):
        graph = erdos_renyi_gnm(60, 150, seed=2)
        path = tmp_path / "graph.txt"
        written = graph_to_edge_list_file(graph, str(path), header_comment="test graph")
        assert written == graph.num_edges
        parsed, mapping = edge_list_file_to_graph(str(path))
        assert parsed == graph
        assert len(mapping) == graph.num_vertices

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n% other\n10 20\n20 30\n")
        graph, mapping = edge_list_file_to_graph(str(path), compact=True)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert set(mapping) == {10, 20, 30}

    def test_non_contiguous_ids_are_compacted_on_request(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1000 2000\n2000 5\n")
        graph, mapping = edge_list_file_to_graph(str(path), compact=True)
        assert graph.num_vertices == 3
        assert mapping[1000] == 0
        assert graph.has_edge(mapping[1000], mapping[2000])

    def test_ids_are_kept_verbatim_by_default(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 5\n")
        graph, mapping = edge_list_file_to_graph(str(path))
        assert graph.num_vertices == 6
        assert mapping == {0: 0, 1: 1, 5: 5}
        assert graph.has_edge(1, 5)

    def test_bad_lines_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(StorageError):
            edge_list_file_to_graph(str(path))
        path.write_text("a b\n")
        with pytest.raises(StorageError):
            edge_list_file_to_graph(str(path))
        path.write_text("-1 2\n")
        with pytest.raises(StorageError):
            edge_list_file_to_graph(str(path))


class TestBinaryConversion:
    def test_import_produces_a_solvable_adjacency_file(self, tmp_path):
        graph = erdos_renyi_gnm(80, 200, seed=3)
        text_path = tmp_path / "graph.txt"
        adjacency_path = tmp_path / "graph.adj"
        graph_to_edge_list_file(graph, str(text_path))
        imported, _ = import_edge_list(str(text_path), str(adjacency_path))
        assert imported == graph
        reader = AdjacencyFileReader(str(adjacency_path))
        result = greedy_mis(reader)
        assert result.size == greedy_mis(graph).size
        reader.close()

    def test_import_degree_order_is_sorted(self, tmp_path):
        graph = erdos_renyi_gnm(50, 160, seed=4)
        text_path = tmp_path / "graph.txt"
        adjacency_path = tmp_path / "graph.adj"
        graph_to_edge_list_file(graph, str(text_path))
        import_edge_list(str(text_path), str(adjacency_path), order="degree")
        reader = AdjacencyFileReader(str(adjacency_path))
        degrees = [len(neighbors) for _, neighbors in reader.scan()]
        assert degrees == sorted(degrees)
        reader.close()

    def test_import_rejects_unknown_order(self, tmp_path):
        text_path = tmp_path / "graph.txt"
        text_path.write_text("0 1\n")
        with pytest.raises(StorageError):
            import_edge_list(str(text_path), str(tmp_path / "x.adj"), order="random")

    def test_export_roundtrip(self, tmp_path):
        graph = erdos_renyi_gnm(40, 100, seed=5)
        text_path = tmp_path / "in.txt"
        adjacency_path = tmp_path / "graph.adj"
        out_text_path = tmp_path / "out.txt"
        graph_to_edge_list_file(graph, str(text_path))
        import_edge_list(str(text_path), str(adjacency_path), order="id")
        exported = export_edge_list(str(adjacency_path), str(out_text_path))
        assert exported == graph.num_edges
        reparsed, _ = edge_list_file_to_graph(str(out_text_path))
        assert reparsed.num_edges == graph.num_edges
        assert reparsed.num_vertices == graph.num_vertices
