"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import PLRGParameters, plrg_graph


@pytest.fixture
def paper_figure1_graph() -> Graph:
    """The five-vertex example of Figure 1.

    Vertex 0 (v1 in the paper) is adjacent to vertices 2, 3, 4 (v3, v4,
    v5).  The figure is only partially specified in the text; this
    structure matches the stated facts: {v1, v2} is a *maximal*
    independent set while {v2, v3, v4, v5} is the *maximum* one (the
    independence number is four).
    """

    # v1=0 adjacent to v3=2, v4=3, v5=4; v2=1 is not adjacent to any of them.
    return Graph(5, [(0, 2), (0, 3), (0, 4)])


@pytest.fixture
def small_random_graph() -> Graph:
    """A fixed 60-vertex random graph small enough for the exact solver."""

    return erdos_renyi_gnm(60, 120, seed=7)


@pytest.fixture
def medium_random_graph() -> Graph:
    """A fixed 400-vertex random graph used by the solver integration tests."""

    return erdos_renyi_gnm(400, 1200, seed=11)


@pytest.fixture
def small_plrg_graph() -> Graph:
    """A fixed power-law graph of roughly 1,500 vertices."""

    params = PLRGParameters.from_vertex_count(1_500, 2.2)
    return plrg_graph(params, seed=3)


@pytest.fixture(
    params=[
        ("path", lambda: path_graph(11), 6),
        ("cycle", lambda: cycle_graph(9), 4),
        ("star", lambda: star_graph(8), 8),
        ("complete", lambda: complete_graph(6), 1),
        ("bipartite", lambda: complete_bipartite_graph(4, 7), 7),
    ],
    ids=["path11", "cycle9", "star8", "complete6", "bipartite4x7"],
)
def known_optimum_graph(request):
    """Graphs with a known independence number: ``(graph, optimum)``."""

    _name, factory, optimum = request.param
    return factory(), optimum
