"""Unit tests for the external degree sort and its I/O cost model."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.external_sort import (
    external_sort_by_degree,
    greedy_total_io_cost,
    sort_io_cost,
)


def _unsorted_reader(graph):
    """Write the graph in id order (i.e. *not* degree order) and open a reader."""

    device = write_adjacency_file(graph, order=range(graph.num_vertices))
    return AdjacencyFileReader(device)


class TestExternalSort:
    def test_output_is_degree_sorted(self):
        graph = erdos_renyi_gnm(80, 300, seed=4)
        result = external_sort_by_degree(_unsorted_reader(graph), memory_budget=1 << 12)
        degrees = [len(neighbors) for _, neighbors in result.reader.scan()]
        assert degrees == sorted(degrees)

    def test_output_preserves_graph(self):
        graph = erdos_renyi_gnm(60, 150, seed=5)
        result = external_sort_by_degree(_unsorted_reader(graph), memory_budget=1 << 12)
        assert result.reader.to_graph() == graph

    def test_small_budget_produces_multiple_runs(self):
        graph = plrg_graph_with_vertex_count(400, 2.1, seed=1, sort_by_degree=False)
        tight = external_sort_by_degree(_unsorted_reader(graph), memory_budget=2_000)
        loose = external_sort_by_degree(_unsorted_reader(graph), memory_budget=1 << 22)
        assert tight.num_runs > loose.num_runs
        assert loose.num_runs == 1
        assert loose.merge_passes == 0

    def test_sorted_file_can_be_written_to_disk(self, tmp_path):
        graph = erdos_renyi_gnm(40, 100, seed=6)
        out = tmp_path / "sorted.adj"
        result = external_sort_by_degree(
            _unsorted_reader(graph), output_backing=str(out), memory_budget=1 << 12
        )
        result.reader.close()
        reopened = AdjacencyFileReader(str(out))
        degrees = [len(neighbors) for _, neighbors in reopened.scan()]
        assert degrees == sorted(degrees)
        reopened.close()

    def test_io_stats_are_accumulated(self):
        graph = erdos_renyi_gnm(60, 200, seed=7)
        result = external_sort_by_degree(_unsorted_reader(graph), memory_budget=4_000)
        assert result.stats.bytes_written > 0
        assert result.stats.bytes_read > 0

    def test_invalid_memory_budget_rejected(self):
        graph = erdos_renyi_gnm(10, 20, seed=8)
        with pytest.raises(StorageError):
            external_sort_by_degree(_unsorted_reader(graph), memory_budget=0)


class TestIOCostModel:
    def test_single_pass_cost_is_two_scans(self):
        # When |V|/B <= 1 the logarithm clamps to zero: sort + scan = 2 passes.
        cost = greedy_total_io_cost(num_vertices=100, num_edges=900, block_size=1024, memory=8192)
        assert cost == pytest.approx(2 * 1000 / 1024)

    def test_cost_grows_with_graph_size(self):
        small = greedy_total_io_cost(10_000, 50_000, block_size=4096, memory=1 << 20)
        large = greedy_total_io_cost(100_000, 500_000, block_size=4096, memory=1 << 20)
        assert large > small

    def test_cost_shrinks_with_memory(self):
        tight = sort_io_cost(10**6, 10**7, block_size=4096, memory=1 << 16)
        roomy = sort_io_cost(10**6, 10**7, block_size=4096, memory=1 << 28)
        assert roomy < tight

    def test_invalid_parameters_rejected(self):
        with pytest.raises(StorageError):
            sort_io_cost(10, 10, block_size=0, memory=100)
        with pytest.raises(StorageError):
            sort_io_cost(10, 10, block_size=100, memory=50)
