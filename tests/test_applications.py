"""Unit tests for the MIS-based applications (vertex cover, colouring)."""

from __future__ import annotations

import pytest

from repro.applications.coloring import ColoringResult, is_proper_coloring, iterated_is_coloring
from repro.applications.vertex_cover import is_vertex_cover, vertex_cover
from repro.baselines.exact import independence_number
from repro.errors import SolverError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.plrg import plrg_graph_with_vertex_count


class TestVertexCover:
    def test_cover_is_complement_of_the_independent_set(self):
        graph = erdos_renyi_gnm(150, 450, seed=1)
        result = vertex_cover(graph)
        assert result.cover | result.mis_result.independent_set == set(graph.vertices())
        assert not (result.cover & result.mis_result.independent_set)

    def test_cover_covers_every_edge(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(120, 360, seed=seed)
            result = vertex_cover(graph)
            assert is_vertex_cover(graph, result.cover)

    def test_star_cover_is_the_centre(self):
        result = vertex_cover(star_graph(8))
        assert result.cover == frozenset({0})
        assert result.size == 1

    def test_empty_graph_needs_no_cover(self):
        result = vertex_cover(empty_graph(5))
        assert result.size == 0

    def test_complete_graph_cover_is_all_but_one(self):
        result = vertex_cover(complete_graph(6))
        assert result.size == 5

    def test_bipartite_cover_is_smaller_side(self):
        result = vertex_cover(complete_bipartite_graph(3, 9))
        assert result.size == 3

    def test_cover_size_complements_the_optimum_on_small_graphs(self, small_random_graph):
        result = vertex_cover(small_random_graph)
        optimum_is = independence_number(small_random_graph)
        minimum_cover = small_random_graph.num_vertices - optimum_is
        assert result.size >= minimum_cover
        # The two-k-swap pipeline stays close to the optimum cover.
        assert result.size <= minimum_cover + 3

    def test_pipeline_is_recorded(self):
        graph = erdos_renyi_gnm(80, 160, seed=4)
        result = vertex_cover(graph, pipeline="greedy")
        assert result.pipeline == "greedy"

    def test_better_pipeline_never_enlarges_the_cover(self):
        graph = plrg_graph_with_vertex_count(1_000, 2.1, seed=5)
        greedy_cover = vertex_cover(graph, pipeline="greedy")
        swap_cover = vertex_cover(graph, pipeline="two_k_swap")
        assert swap_cover.size <= greedy_cover.size


class TestColoring:
    def test_coloring_is_proper_on_random_graphs(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(120, 400, seed=seed)
            coloring = iterated_is_coloring(graph)
            assert is_proper_coloring(graph, coloring.colors)

    def test_every_vertex_receives_a_color(self):
        graph = erdos_renyi_gnm(100, 250, seed=3)
        coloring = iterated_is_coloring(graph)
        assert set(coloring.colors) == set(graph.vertices())
        assert sum(coloring.class_sizes()) == graph.num_vertices

    def test_bipartite_graph_uses_two_colors(self):
        coloring = iterated_is_coloring(complete_bipartite_graph(4, 6))
        assert coloring.num_colors == 2

    def test_even_cycle_two_colors_odd_cycle_three(self):
        assert iterated_is_coloring(cycle_graph(10)).num_colors == 2
        assert iterated_is_coloring(cycle_graph(9)).num_colors == 3

    def test_complete_graph_needs_n_colors(self):
        coloring = iterated_is_coloring(complete_graph(5))
        assert coloring.num_colors == 5

    def test_empty_graph_uses_one_color(self):
        coloring = iterated_is_coloring(empty_graph(7))
        assert coloring.num_colors == 1
        assert coloring.class_sizes() == [7]

    def test_path_uses_few_colors(self):
        # Iterated MIS extraction does not guarantee the optimum two colours
        # on a path (the first class can split the leftovers), but it stays
        # within one extra colour and is always proper.
        graph = path_graph(12)
        coloring = iterated_is_coloring(graph)
        assert coloring.num_colors <= 3
        assert is_proper_coloring(graph, coloring.colors)

    def test_max_colors_guard(self):
        with pytest.raises(SolverError):
            iterated_is_coloring(complete_graph(6), max_colors=3)

    def test_color_classes_are_independent_sets(self):
        graph = plrg_graph_with_vertex_count(800, 2.0, seed=7)
        coloring = iterated_is_coloring(graph)
        from repro.validation.checks import is_independent_set

        for color_class in coloring.color_classes:
            assert is_independent_set(graph, color_class)

    def test_swap_pipeline_never_needs_more_colors_than_vertices(self):
        graph = erdos_renyi_gnm(60, 300, seed=8)
        coloring = iterated_is_coloring(graph, pipeline="two_k_swap")
        assert coloring.num_colors <= graph.num_vertices
        assert is_proper_coloring(graph, coloring.colors)
