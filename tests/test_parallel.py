"""Intra-job parallel execution tests: parity, resume, service knobs.

The acceptance contract of the parallel layer is *bit-identical
determinism*: for every worker count, backend and source kind, the
sharded passes must reproduce the serial backends exactly — independent
sets, per-round telemetry, oscillation fingerprints, ``on_round``
checkpoint snapshots and modeled ``IOStats``.  Worker count is an
execution property like ``backend``, so checkpoints written under one
worker count must resume under any other.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import EXIT_INTERRUPTED, build_parser, main
from repro.core.kernels import resolve_backend
from repro.core.parallel import close_parallel_sessions, parallelize_kernel
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.pipeline.spec import BUILTIN_PIPELINES, RunSpec
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SolverService,
    cache_key,
)
from repro.service.cache import spec_key_fields
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.binary_format import MemmapAdjacencySource
from repro.storage.converters import adjacency_to_binary
from repro.storage.scan import as_scan_source

np = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def _reap_worker_pools():
    """Release cached worker pools after every test.

    Cached sessions deliberately outlive a pass; tests must not leak
    their worker processes (or shared-memory segments) into each other.
    """

    yield
    close_parallel_sessions()


def _graph(kind: str):
    if kind == "gnm":
        return erdos_renyi_gnm(1_200, 3_600, seed=7)
    return plrg_graph_with_vertex_count(1_000, 2.1, seed=3)


def _kernel(source, backend: str, workers: int):
    kernel = resolve_backend(backend, source)
    if workers > 1:
        kernel = parallelize_kernel(kernel, workers)
    return kernel


def _run_greedy_one_k(graph, backend: str, workers: int):
    source = as_scan_source(graph)
    kernel = _kernel(source, backend, workers)
    initial = kernel.greedy_pass(source)
    snapshots = []
    out = kernel.one_k_swap_pass(source, initial, None, on_round=snapshots.append)
    return initial, out, snapshots, source.stats.as_dict()


# ----------------------------------------------------------------------
# Parity: serial vs sharded, across graphs × backends × worker counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("backend", ["numpy", "python"])
@pytest.mark.parametrize("kind", ["gnm", "plrg"])
def test_parity_in_memory(kind, backend, workers):
    graph = _graph(kind)
    serial = _run_greedy_one_k(graph, backend, 1)
    parallel = _run_greedy_one_k(graph, backend, workers)
    assert parallel[0] == serial[0], "greedy sets differ"
    assert parallel[1] == serial[1], "one-k result tuples differ"
    assert len(parallel[2]) == len(serial[2])
    for got, want in zip(parallel[2], serial[2]):
        assert got == want, "round checkpoint snapshots differ"
    assert parallel[3] == serial[3], "modeled IOStats differ"


@pytest.mark.parametrize("workers", [2, 4])
def test_parity_two_k(workers):
    graph = erdos_renyi_gnm(800, 2_400, seed=5)
    def run(w):
        source = as_scan_source(graph)
        kernel = _kernel(source, "numpy", w)
        initial = kernel.greedy_pass(source)
        out = kernel.two_k_swap_pass(source, initial, None, 64, 256)
        return out, source.stats.as_dict()
    serial = run(1)
    parallel = run(workers)
    assert parallel == serial


@pytest.fixture(scope="module")
def file_sources(tmp_path_factory):
    graph = erdos_renyi_gnm(2_500, 8_000, seed=13)
    root = tmp_path_factory.mktemp("parallel-sources")
    text = str(root / "g.adj")
    write_adjacency_file(graph, text).close()
    binary = str(root / "g.csr1")
    adjacency_to_binary(text, binary)
    return text, binary


@pytest.mark.parametrize("kind", ["text", "memmap"])
@pytest.mark.parametrize("workers", [2, 4])
def test_parity_semi_external(file_sources, kind, workers):
    text, binary = file_sources

    def run(w):
        if kind == "text":
            source = AdjacencyFileReader(text)
        else:
            source = MemmapAdjacencySource(binary)
        try:
            kernel = _kernel(source, "numpy", w)
            initial = kernel.greedy_pass(source)
            out = kernel.one_k_swap_pass(source, initial, None)
            return initial, out, source.stats.as_dict()
        finally:
            close_parallel_sessions()
            source.close()

    assert run(workers) == run(1)


# ----------------------------------------------------------------------
# Checkpoints carry across worker counts
# ----------------------------------------------------------------------
def test_cross_worker_count_resume():
    graph = erdos_renyi_gnm(2_000, 6_000, seed=17)
    source = as_scan_source(graph)
    initial = resolve_backend("numpy", source).greedy_pass(source)

    def snapshot_after_two_rounds(workers):
        src = as_scan_source(graph)
        snaps = []
        _kernel(src, "numpy", workers).one_k_swap_pass(
            src, initial, 2, on_round=snaps.append
        )
        return json.loads(json.dumps(snaps[-1]))

    def finish(resume_state, workers):
        src = as_scan_source(graph)
        return _kernel(src, "numpy", workers).one_k_swap_pass(
            src, frozenset(), None, resume=resume_state
        )

    snap_parallel = snapshot_after_two_rounds(4)
    snap_serial = snapshot_after_two_rounds(1)
    assert snap_parallel == snap_serial, "round-2 checkpoint states differ"

    src = as_scan_source(graph)
    uninterrupted = resolve_backend("numpy", src).one_k_swap_pass(src, initial, None)
    # Written parallel, resumed serial — and the reverse.
    assert finish(snap_parallel, 1) == uninterrupted
    assert finish(snap_serial, 4) == uninterrupted


def test_mid_round_kill_resume_drill_workers4(tmp_path, capsys):
    """CLI drill: kill at every checkpoint write under ``--workers 4``."""

    graph = erdos_renyi_gnm(900, 2_700, seed=23)
    input_path = str(tmp_path / "g.adj")
    write_adjacency_file(graph, input_path).close()
    checkpoint = str(tmp_path / "drill.ck")

    rc = main(
        [
            "solve",
            input_path,
            "--pipeline",
            "one_k_swap",
            "--backend",
            "numpy",
            "--workers",
            "4",
            "--checkpoint",
            checkpoint,
            "--interrupt-after",
            "1",
            "--json",
        ]
    )
    capsys.readouterr()
    assert rc == EXIT_INTERRUPTED
    for _ in range(64):
        rc = main(
            [
                "solve",
                input_path,
                "--pipeline",
                "one_k_swap",
                "--backend",
                "numpy",
                "--workers",
                "4",
                "--checkpoint",
                checkpoint,
                "--resume",
                "--interrupt-after",
                "1",
                "--json",
            ]
        )
        if rc == 0:
            break
        assert rc == EXIT_INTERRUPTED
        capsys.readouterr()
    assert rc == 0
    drilled = json.loads(capsys.readouterr().out)

    rc = main(
        [
            "solve",
            input_path,
            "--pipeline",
            "one_k_swap",
            "--backend",
            "numpy",
            "--json",
        ]
    )
    assert rc == 0
    reference = json.loads(capsys.readouterr().out)
    for field in ("size", "rounds", "sequential_scans", "random_vertex_lookups"):
        assert drilled[field] == reference[field]


# ----------------------------------------------------------------------
# Run specs and the CLI runner
# ----------------------------------------------------------------------
def test_run_spec_workers_flow(tmp_path, capsys):
    graph = erdos_renyi_gnm(600, 1_800, seed=29)
    input_path = str(tmp_path / "g.adj")
    write_adjacency_file(graph, input_path).close()

    def run_with(workers):
        config = tmp_path / f"run-w{workers}.json"
        config.write_text(
            json.dumps(
                {
                    "pipeline": "one_k_swap",
                    "input": input_path,
                    "backend": "numpy",
                    "workers": workers,
                }
            )
        )
        assert main(["run", "--config", str(config), "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    serial = run_with(1)
    parallel = run_with(2)
    for field in ("size", "rounds", "sequential_scans", "random_vertex_lookups"):
        assert parallel[field] == serial[field]


def test_run_spec_rejects_bad_workers():
    from repro.errors import PipelineSpecError

    with pytest.raises(PipelineSpecError):
        RunSpec.from_json(
            '{"pipeline": "greedy", "input": "g.adj", "workers": 0}'
        )
    with pytest.raises(PipelineSpecError):
        RunSpec.from_json(
            '{"pipeline": "greedy", "input": "g.adj", "workers": true}'
        )


# ----------------------------------------------------------------------
# Result-cache key stability across the workers field's introduction
# ----------------------------------------------------------------------
def test_cache_key_stable_for_serial_specs():
    """A ``workers=1`` spec must key exactly as before the field existed.

    The serial default is omitted from the key fields, so service
    directories populated by older daemons keep hitting their cache.
    """

    spec = RunSpec(pipeline=BUILTIN_PIPELINES["one_k_swap"], input="g.csr1")
    digest = "csr1:feedfacefeedfacefeedfacefeedface"
    fields = spec_key_fields(spec, digest)
    assert set(fields) == {
        "backend",
        "input_digest",
        "max_rounds",
        "memory_limit_bytes",
        "pipeline",
    }
    # The key of the identical pre-workers field dict, computed the way
    # the cache computes it — byte-for-byte the old on-disk key.
    import hashlib

    legacy = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    expected = hashlib.blake2b(legacy.encode("utf-8"), digest_size=16).hexdigest()
    assert cache_key(spec, digest) == expected


def test_cache_key_distinguishes_parallel_specs():
    digest = "csr1:feedfacefeedfacefeedfacefeedface"
    serial = RunSpec(pipeline=BUILTIN_PIPELINES["greedy"], input="g.csr1")
    parallel = RunSpec(
        pipeline=BUILTIN_PIPELINES["greedy"], input="g.csr1", workers=4
    )
    assert spec_key_fields(parallel, digest)["workers"] == 4
    assert cache_key(serial, digest) != cache_key(parallel, digest)


# ----------------------------------------------------------------------
# Service: hung-worker detection and the serve CLI knobs
# ----------------------------------------------------------------------
def _hang_forever(root, job_id):  # pragma: no cover - killed mid-sleep
    time.sleep(600)


def test_stale_heartbeat_kills_and_requeues(tmp_path, monkeypatch):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("hang simulation needs fork start method")
    graph = erdos_renyi_gnm(200, 600, seed=31)
    input_path = str(tmp_path / "g.adj")
    write_adjacency_file(graph, input_path).close()
    root = str(tmp_path / "svc")
    client = ServiceClient(root)
    record = client.submit(
        RunSpec(pipeline=BUILTIN_PIPELINES["greedy"], input=input_path)
    )

    # The forked worker inherits the patched target and never beats.
    monkeypatch.setattr("repro.service.service.worker_main", _hang_forever)
    service = SolverService(
        root,
        ServiceConfig(
            workers=1,
            poll_interval_seconds=0.02,
            heartbeat_timeout_seconds=0.3,
            max_restarts=0,
        ),
    )
    try:
        service.run_once()
        assert client.status(record.job_id).state == "running"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            service.run_once()
            if client.status(record.job_id).is_terminal():
                break
            time.sleep(0.05)
        final = client.status(record.job_id)
        assert final.state == "failed"
        assert "hung" in (final.error or "")
    finally:
        service.stop()


def test_heartbeat_timeout_spares_live_workers(tmp_path):
    """An armed (generous) timeout never kills a job that makes progress."""

    graph = erdos_renyi_gnm(300, 900, seed=37)
    input_path = str(tmp_path / "g.adj")
    write_adjacency_file(graph, input_path).close()
    root = str(tmp_path / "svc")
    client = ServiceClient(root)
    record = client.submit(
        RunSpec(
            pipeline=BUILTIN_PIPELINES["one_k_swap"],
            input=input_path,
            backend="numpy",
        )
    )
    service = SolverService(
        root,
        ServiceConfig(
            workers=1, poll_interval_seconds=0.02, heartbeat_timeout_seconds=60.0
        ),
    )
    try:
        service.drain(timeout_seconds=120.0)
    finally:
        service.stop()
    final = client.status(record.job_id)
    assert final.state == "done", final.error
    # Terminal bookkeeping removes the beat file.
    assert not os.path.exists(service.store.heartbeat_path(record.job_id))


def test_serve_accepts_job_workers_and_legacy_alias():
    parser = build_parser()
    modern = parser.parse_args(["serve", "svc", "--job-workers", "3"])
    assert modern.job_workers == 3
    legacy = parser.parse_args(["serve", "svc", "--workers", "5"])
    assert legacy.job_workers == 5
    armed = parser.parse_args(
        ["serve", "svc", "--heartbeat-timeout-seconds", "2.5"]
    )
    assert armed.heartbeat_timeout_seconds == 2.5


# ----------------------------------------------------------------------
# Session cache lifecycle
# ----------------------------------------------------------------------
def test_close_parallel_sessions_releases_pools():
    from repro.core.parallel import passes

    graph = erdos_renyi_gnm(500, 1_500, seed=41)
    source = as_scan_source(graph)
    kernel = _kernel(source, "numpy", 2)
    kernel.greedy_pass(source)
    assert passes._SESSION_CACHE, "pass should leave a warm session"
    procs = [
        proc for session in passes._SESSION_CACHE.values()
        for proc in session.pool._procs
    ]
    assert procs and all(proc.is_alive() for proc in procs)
    close_parallel_sessions()
    assert not passes._SESSION_CACHE
    assert all(not proc.is_alive() for proc in procs)
