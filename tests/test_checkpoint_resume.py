"""Crash-resume parity: an interrupted run, resumed from its checkpoint,
reproduces the uninterrupted run bit-identically.

The engine's ``interrupt_after=N`` knob simulates the kill right after
the N-th checkpoint write (boundary writes after each stage, round writes
after each swap round), covering both mid-pipeline and mid-round-loop
interruption points.  Parity is asserted on the independent set, the
per-round telemetry, the cumulative ``IOStats`` and the per-stage reports
for both kernel backends on gnm and PLRG graphs under degree and id scan
orders — and on true file-backed readers, whose resumed process must
additionally rebuild its in-memory record index without perturbing the
logical accounting.
"""

from __future__ import annotations

import pytest

from repro.core.solver import PIPELINES, solve_mis
from repro.errors import CheckpointError, PipelineInterrupted, SolverError
from repro.graphs.generators import erdos_renyi_gnm
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.pipeline.context import ExecutionContext
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.spec import PipelineSpec
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.io_stats import IOStats

BACKENDS = ("python", "numpy")

GRAPHS = {
    "gnm": lambda: erdos_renyi_gnm(260, 800, seed=13),
    "plrg": lambda: plrg_graph_with_vertex_count(260, 2.0, seed=13),
}


def _strip_elapsed(stages):
    return [
        {key: value for key, value in entry.items() if key != "elapsed_seconds"}
        for entry in stages
    ]


def _assert_identical(resumed, reference):
    assert resumed.independent_set == reference.independent_set
    assert resumed.rounds == reference.rounds
    assert resumed.io.as_dict() == reference.io.as_dict()
    assert resumed.initial_size == reference.initial_size
    assert resumed.memory_bytes == reference.memory_bytes
    assert _strip_elapsed(resumed.extras["stages"]) == _strip_elapsed(
        reference.extras["stages"]
    )
    rest = {k: v for k, v in resumed.extras.items() if k != "stages"}
    ref_rest = {k: v for k, v in reference.extras.items() if k != "stages"}
    assert rest == ref_rest


def _interrupt_and_resume(
    make_input, spec, backend, checkpoint, interrupt_after, max_rounds=None, order="degree"
):
    """Run until the N-th checkpoint write, drop everything, resume fresh."""

    ctx = ExecutionContext.create(make_input(), backend=backend, order=order)
    engine = PipelineEngine(
        spec,
        max_rounds=max_rounds,
        checkpoint_path=checkpoint,
        interrupt_after=interrupt_after,
    )
    with pytest.raises(PipelineInterrupted):
        engine.run(ctx)

    fresh_ctx = ExecutionContext.create(make_input(), backend=backend, order=order)
    resumed_engine = PipelineEngine(
        spec, max_rounds=max_rounds, checkpoint_path=checkpoint, resume=True
    )
    return resumed_engine.run(fresh_ctx)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("graph_kind", sorted(GRAPHS))
@pytest.mark.parametrize("order", ["degree", "id"])
@pytest.mark.parametrize("pipeline", ["one_k_swap", "two_k_swap"])
class TestInMemoryResumeParity:
    def test_resume_after_first_swap_round(
        self, backend, graph_kind, order, pipeline, tmp_path
    ):
        graph = GRAPHS[graph_kind]()
        reference = solve_mis(graph, pipeline=pipeline, backend=backend, order=order)
        resumed = _interrupt_and_resume(
            lambda: graph,
            PIPELINES[pipeline],
            backend,
            str(tmp_path / "ck.json"),
            interrupt_after=2,  # boundary after greedy + first swap round
            order=order,
        )
        _assert_identical(resumed, reference)

    def test_resume_from_stage_boundary(
        self, backend, graph_kind, order, pipeline, tmp_path
    ):
        graph = GRAPHS[graph_kind]()
        reference = solve_mis(graph, pipeline=pipeline, backend=backend, order=order)
        resumed = _interrupt_and_resume(
            lambda: graph,
            PIPELINES[pipeline],
            backend,
            str(tmp_path / "ck.json"),
            interrupt_after=1,  # killed right after the greedy boundary write
            order=order,
        )
        _assert_identical(resumed, reference)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFileBackedResumeParity:
    """The resumed process reopens the file and rebuilds its record index.

    Every reader opens its own device over a real temp file, as separate
    OS processes would — reusing one in-memory device across runs would
    leak the sequential-read cursor between "processes" and perturb the
    seek accounting.
    """

    @pytest.fixture
    def adjacency_path(self, tmp_path):
        graph = plrg_graph_with_vertex_count(300, 2.0, seed=21)
        path = str(tmp_path / "graph.adj")
        write_adjacency_file(graph, path).close()
        return path

    def test_two_k_resume_mid_round(self, backend, adjacency_path, tmp_path):
        reference = solve_mis(
            AdjacencyFileReader(adjacency_path),
            pipeline="two_k_swap",
            backend=backend,
        )
        resumed = _interrupt_and_resume(
            lambda: AdjacencyFileReader(adjacency_path),
            PIPELINES["two_k_swap"],
            backend,
            str(tmp_path / "ck.json"),
            interrupt_after=2,
        )
        _assert_identical(resumed, reference)

    def test_one_k_resume_with_round_cap(self, backend, adjacency_path, tmp_path):
        reference = solve_mis(
            AdjacencyFileReader(adjacency_path),
            pipeline="one_k_swap",
            backend=backend,
            max_rounds=3,
        )
        resumed = _interrupt_and_resume(
            lambda: AdjacencyFileReader(adjacency_path),
            PIPELINES["one_k_swap"],
            backend,
            str(tmp_path / "ck.json"),
            interrupt_after=2,
            max_rounds=3,
        )
        _assert_identical(resumed, reference)

    def test_every_interruption_point_is_bit_identical(
        self, backend, adjacency_path, tmp_path
    ):
        """Kill after each successive checkpoint write until the run completes."""

        reference = solve_mis(
            AdjacencyFileReader(adjacency_path),
            pipeline="two_k_swap",
            backend=backend,
        )
        checkpoint = str(tmp_path / "ck.json")
        interrupt_after = 1
        while True:
            ctx = ExecutionContext.create(
                AdjacencyFileReader(adjacency_path), backend=backend
            )
            engine = PipelineEngine(
                PIPELINES["two_k_swap"],
                checkpoint_path=checkpoint,
                interrupt_after=interrupt_after,
            )
            try:
                engine.run(ctx)
            except PipelineInterrupted:
                pass
            else:
                break  # the run finished before the interrupt fired
            resumed = PipelineEngine(
                PIPELINES["two_k_swap"], checkpoint_path=checkpoint, resume=True
            ).run(
                ExecutionContext.create(
                    AdjacencyFileReader(adjacency_path), backend=backend
                )
            )
            _assert_identical(resumed, reference)
            interrupt_after += 1
        assert interrupt_after > 2  # at least one boundary and one round covered


class TestResumeAcrossReduce:
    def test_resume_mid_swap_after_reduce_stage(self, tmp_path):
        """Mid-pipeline resume past a source-transforming stage."""

        graph = plrg_graph_with_vertex_count(260, 2.2, seed=17)
        reference = solve_mis(graph, pipeline="reduce_two_k_swap")
        checkpoint = str(tmp_path / "ck.json")
        # Interrupt after: reduce boundary (1) + greedy boundary (2) + the
        # first two-k round checkpoint (3) — the resumed run must restore
        # the kernel graph from the artifact, not re-reduce the input.
        resumed = _interrupt_and_resume(
            lambda: graph,
            PIPELINES["reduce_two_k_swap"],
            None,
            checkpoint,
            interrupt_after=3,
        )
        _assert_identical(resumed, reference)

    def test_resume_after_completed_run_is_idempotent(self, tmp_path):
        graph = erdos_renyi_gnm(150, 500, seed=19)
        checkpoint = str(tmp_path / "ck.json")
        ctx = ExecutionContext.create(graph)
        reference = PipelineEngine(
            PIPELINES["two_k_swap"], checkpoint_path=checkpoint
        ).run(ctx)
        replayed = PipelineEngine(
            PIPELINES["two_k_swap"], checkpoint_path=checkpoint, resume=True
        ).run(ExecutionContext.create(graph))
        _assert_identical(replayed, reference)


class TestCheckpointPolicy:
    """Time-based round-checkpoint throttling and prefix-encode caching."""

    @staticmethod
    def _fake_clock(step_seconds):
        state = {"now": 0.0}

        def clock():
            state["now"] += step_seconds
            return state["now"]

        return clock

    def _writes(self, graph, tmp_path, every, step_seconds):
        engine = PipelineEngine(
            PIPELINES["one_k_swap"],
            checkpoint_path=str(tmp_path / "ck"),
            checkpoint_every_seconds=every,
            clock=self._fake_clock(step_seconds),
        )
        result = engine.run(ExecutionContext.create(graph))
        return engine._checkpoint_writes, result

    def test_throttle_skips_round_checkpoints(self, tmp_path):
        graph = erdos_renyi_gnm(260, 800, seed=13)
        baseline_writes, reference = self._writes(
            graph, tmp_path, every=None, step_seconds=1.0
        )
        # Rounds tick the clock 1s at a time; a 1000s cadence suppresses
        # every round write, leaving exactly one boundary per stage.
        throttled_writes, throttled = self._writes(
            graph, tmp_path, every=1000.0, step_seconds=1.0
        )
        assert baseline_writes > len(PIPELINES["one_k_swap"].stages)
        assert throttled_writes == len(PIPELINES["one_k_swap"].stages)
        assert throttled.independent_set == reference.independent_set
        assert throttled.rounds == reference.rounds

    def test_fast_clock_keeps_every_round(self, tmp_path):
        graph = erdos_renyi_gnm(260, 800, seed=13)
        baseline_writes, _ = self._writes(graph, tmp_path, every=None, step_seconds=1.0)
        slow_cadence_writes, _ = self._writes(
            graph, tmp_path, every=0.5, step_seconds=1.0
        )
        assert slow_cadence_writes == baseline_writes

    def test_resume_from_throttled_checkpoint_is_bit_identical(self, tmp_path):
        """A resume from an older (throttled) checkpoint replays the skipped
        rounds and still matches the uninterrupted run exactly."""

        graph = erdos_renyi_gnm(260, 800, seed=29)  # 3 one-k rounds
        reference = solve_mis(graph, pipeline="one_k_swap")
        checkpoint = str(tmp_path / "ck")
        engine = PipelineEngine(
            PIPELINES["one_k_swap"],
            checkpoint_path=checkpoint,
            # Cadence 2.5s over a 1s-step clock: the first two round
            # checkpoints are suppressed, so write #2 is the *throttled*
            # round-3 checkpoint and the kill lands mid-round-loop.
            checkpoint_every_seconds=2.5,
            clock=self._fake_clock(1.0),
            interrupt_after=2,
        )
        with pytest.raises(PipelineInterrupted):
            engine.run(ExecutionContext.create(graph))
        resumed = PipelineEngine(
            PIPELINES["one_k_swap"], checkpoint_path=checkpoint, resume=True
        ).run(ExecutionContext.create(graph))
        _assert_identical(resumed, reference)

    def test_nonpositive_cadence_rejected(self):
        with pytest.raises(SolverError, match="positive"):
            PipelineEngine(
                PIPELINES["greedy"],
                checkpoint_path="ck",
                checkpoint_every_seconds=0,
            )

    def test_completed_prefix_encoded_once_per_boundary(self, tmp_path, monkeypatch):
        """Round writes splice the cached prefix instead of re-encoding it."""

        import repro.pipeline.engine as engine_module

        calls = []
        real = engine_module.encode_section

        def counting(value, base_offset=0):
            calls.append(len(value))
            return real(value, base_offset)

        monkeypatch.setattr(engine_module, "encode_section", counting)
        graph = erdos_renyi_gnm(260, 800, seed=13)
        engine = PipelineEngine(
            PIPELINES["one_k_swap"], checkpoint_path=str(tmp_path / "ck")
        )
        result = engine.run(ExecutionContext.create(graph))
        # One encode per distinct prefix length (1 then 2 completed
        # stages), not one per checkpoint write: the one-k round writes
        # all reuse the length-1 prefix encoded at the greedy boundary.
        assert engine._checkpoint_writes > len(calls)
        assert calls == [1, 2]
        assert result.num_rounds > 1


class TestResumeGuards:
    @pytest.fixture
    def checkpoint(self, tmp_path):
        graph = erdos_renyi_gnm(200, 600, seed=23)
        path = str(tmp_path / "ck.json")
        ctx = ExecutionContext.create(graph, backend="numpy")
        with pytest.raises(PipelineInterrupted):
            PipelineEngine(
                PIPELINES["two_k_swap"], checkpoint_path=path, interrupt_after=2
            ).run(ctx)
        return graph, path

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(SolverError, match="requires a checkpoint_path"):
            PipelineEngine(PIPELINES["greedy"], resume=True)

    def test_wrong_pipeline_is_rejected(self, checkpoint):
        graph, path = checkpoint
        engine = PipelineEngine(
            PIPELINES["one_k_swap"], checkpoint_path=path, resume=True
        )
        with pytest.raises(CheckpointError, match="different|pipeline"):
            engine.run(ExecutionContext.create(graph))

    def test_wrong_max_rounds_is_rejected(self, checkpoint):
        graph, path = checkpoint
        engine = PipelineEngine(
            PIPELINES["two_k_swap"], max_rounds=1, checkpoint_path=path, resume=True
        )
        with pytest.raises(CheckpointError, match="max_rounds"):
            engine.run(ExecutionContext.create(graph))

    def test_wrong_input_graph_is_rejected(self, checkpoint):
        _, path = checkpoint
        other = erdos_renyi_gnm(100, 200, seed=5)
        engine = PipelineEngine(
            PIPELINES["two_k_swap"], checkpoint_path=path, resume=True
        )
        with pytest.raises(CheckpointError, match="wrong input"):
            engine.run(ExecutionContext.create(other))

    def test_round_state_requires_matching_backend(self, checkpoint):
        graph, path = checkpoint
        engine = PipelineEngine(
            PIPELINES["two_k_swap"], checkpoint_path=path, resume=True
        )
        with pytest.raises(CheckpointError, match="kernel backend"):
            engine.run(ExecutionContext.create(graph, backend="python"))
