"""Unit and property tests for the kernelization reductions."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_mis, independence_number
from repro.core.greedy import greedy_mis
from repro.errors import SolverError
from repro.graphs.generators import (
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.reductions.kernel import reduce_graph, reduced_mis
from repro.validation.checks import is_independent_set


class TestReductionRules:
    def test_path_reduces_completely(self):
        reduced = reduce_graph(path_graph(9))
        assert reduced.kernel_size == 0
        assert reduced.guaranteed_gain == 5
        solution = reduced.reconstruct(())
        assert len(solution) == 5
        assert is_independent_set(path_graph(9), solution)

    def test_star_reduces_by_pendant_rule(self):
        reduced = reduce_graph(star_graph(6))
        assert reduced.kernel_size == 0
        assert reduced.stats.pendant >= 1
        assert len(reduced.reconstruct(())) == 6

    def test_cycle_uses_folds(self):
        reduced = reduce_graph(cycle_graph(9))
        assert reduced.kernel_size == 0
        assert reduced.stats.folds >= 1
        solution = reduced.reconstruct(())
        assert is_independent_set(cycle_graph(9), solution)
        assert len(solution) == 4

    def test_triangle_rule_on_cliques_of_three(self):
        reduced = reduce_graph(complete_graph(3))
        assert reduced.kernel_size == 0
        assert reduced.stats.triangle == 1
        assert len(reduced.reconstruct(())) == 1

    def test_dense_graph_keeps_a_kernel(self):
        reduced = reduce_graph(complete_graph(6))
        assert reduced.kernel_size > 0
        assert reduced.kernel_size <= 6

    def test_isolated_vertices_are_forced(self):
        graph = Graph(5, [(0, 1)])
        reduced = reduce_graph(graph)
        assert reduced.stats.isolated >= 3
        assert {2, 3, 4}.issubset(reduced.reconstruct(()))

    def test_kernel_never_larger_than_original(self):
        graph = erdos_renyi_gnm(120, 400, seed=3)
        reduced = reduce_graph(graph)
        assert reduced.kernel_size <= graph.num_vertices
        assert reduced.original_vertices == graph.num_vertices

    def test_reconstruct_rejects_bad_kernel_vertices(self):
        reduced = reduce_graph(complete_graph(6))
        with pytest.raises(SolverError):
            reduced.reconstruct([99])


class TestReducedMIS:
    def test_exact_kernel_solver_gives_exact_answer(self, small_random_graph):
        result = reduced_mis(
            small_random_graph,
            kernel_solver=lambda kernel: exact_mis(kernel).independent_set,
        )
        assert is_independent_set(small_random_graph, result.independent_set)
        assert result.size == independence_number(small_random_graph)

    def test_default_solver_never_worse_than_plain_greedy(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(200, 600, seed=seed)
            assert reduced_mis(graph).size >= greedy_mis(graph).size

    def test_extras_report_kernel_statistics(self):
        graph = plrg_graph_with_vertex_count(1_000, 2.2, seed=1)
        result = reduced_mis(graph)
        assert result.algorithm == "reduced_mis"
        assert result.extras["kernel_vertices"] <= graph.num_vertices
        assert result.extras["rule_applications"] >= 1

    def test_power_law_graphs_reduce_dramatically(self):
        # Reducing-peeling observation: power-law graphs almost vanish
        # under the three simple rules.
        graph = plrg_graph_with_vertex_count(2_000, 2.2, seed=2)
        reduced = reduce_graph(graph)
        assert reduced.kernel_size < 0.5 * graph.num_vertices

    def test_caveman_graph_exact_via_reductions(self):
        graph = caveman_graph(5, 4)
        result = reduced_mis(
            graph, kernel_solver=lambda kernel: exact_mis(kernel).independent_set
        )
        assert result.size == 5


@st.composite
def _small_graphs(draw):
    num_vertices = draw(st.integers(min_value=1, max_value=16))
    max_edges = min(num_vertices * (num_vertices - 1) // 2, 2 * num_vertices)
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            max_size=max_edges,
        )
    )
    return Graph(num_vertices, edges)


class TestReductionProperties:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_small_graphs())
    def test_reductions_preserve_the_independence_number(self, graph):
        result = reduced_mis(
            graph, kernel_solver=lambda kernel: exact_mis(kernel).independent_set
        )
        assert is_independent_set(graph, result.independent_set)
        assert result.size == independence_number(graph)

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_small_graphs())
    def test_reconstruction_is_always_independent(self, graph):
        result = reduced_mis(graph)
        assert is_independent_set(graph, result.independent_set)
