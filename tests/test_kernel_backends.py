"""Backend parity: the numpy kernels must match the python reference exactly.

The vectorized backend re-implements every pass of the three algorithms,
so these tests pin it to the reference implementation on randomized
graphs: identical independent sets (same scan order), identical per-round
telemetry, identical I/O counters and identical modeled memory.  A
deterministic sweep guarantees well over 100 distinct random graphs per
run on top of the hypothesis cases.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import greedy_mis, one_k_swap, solve_mis, two_k_swap
from repro.core.kernels import (
    available_backends,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.solver import PIPELINES
from repro.errors import SolverError
from repro.graphs.cascade import cascade_initial_independent_set, cascade_swap_graph
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.storage.adjacency_file import write_adjacency_file, AdjacencyFileReader
from repro.storage.scan import InMemoryAdjacencyScan


def assert_backends_agree(graph, order="degree", initial=None, max_rounds=8):
    """Run all three algorithms under both backends and compare everything.

    ``max_rounds`` is capped by default: the reference two-k-swap can
    oscillate forever on some graphs in unfavourable scan orders (a
    pre-existing property of the paper's conflict resolution, shared
    bit-for-bit by both backends), and parity over a bounded prefix of
    rounds already pins every state transition.
    """

    for algorithm in (greedy_mis, one_k_swap, two_k_swap):
        results = {}
        for backend in ("python", "numpy"):
            if algorithm is greedy_mis:
                results[backend] = algorithm(graph, order=order, backend=backend)
            else:
                results[backend] = algorithm(
                    graph,
                    order=order,
                    initial=initial,
                    max_rounds=max_rounds,
                    backend=backend,
                )
        python_result, numpy_result = results["python"], results["numpy"]
        name = algorithm.__name__
        assert python_result.independent_set == numpy_result.independent_set, name
        assert python_result.rounds == numpy_result.rounds, name
        assert python_result.io == numpy_result.io, name
        assert python_result.memory_bytes == numpy_result.memory_bytes, name
        assert python_result.initial_size == numpy_result.initial_size, name
        assert python_result.extras == numpy_result.extras, name


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"python", "numpy"} <= set(available_backends())

    def test_default_backend_is_numpy_when_available(self):
        assert default_backend_name() == "numpy"

    def test_get_backend_rejects_unknown_names(self):
        with pytest.raises(SolverError):
            get_backend("fortran")

    def test_set_default_backend_round_trip(self):
        set_default_backend("python")
        try:
            assert default_backend_name() == "python"
        finally:
            set_default_backend(None)
        assert default_backend_name() == "numpy"

    def test_set_default_backend_rejects_unknown_names(self):
        with pytest.raises(SolverError):
            set_default_backend("fortran")

    def test_numpy_backend_runs_file_sources_via_batched_scans(self):
        graph = erdos_renyi_gnm(30, 60, seed=5)
        device = write_adjacency_file(graph)
        reader = AdjacencyFileReader(device)
        assert resolve_backend("numpy", reader).name == "numpy"
        source = InMemoryAdjacencyScan(graph)
        assert resolve_backend("numpy", source).name == "numpy"
        reader.close()

    def test_numpy_backend_falls_back_for_sources_without_batches(self):
        class _RecordStreamOnly:
            """Scan source without scan_batches (custom streaming reader)."""

            num_vertices = 0
            num_edges = 0

        assert resolve_backend("numpy", _RecordStreamOnly()).name == "python"

    def test_file_source_solve_matches_in_memory(self):
        graph = erdos_renyi_gnm(40, 90, seed=6)
        device = write_adjacency_file(graph)
        reader = AdjacencyFileReader(device)
        from_file = greedy_mis(reader, backend="numpy")  # block-batched scans
        in_memory = greedy_mis(graph, backend="numpy")
        assert from_file.independent_set == in_memory.independent_set
        reader.close()


class TestEdgeCases:
    def test_empty_graph(self):
        assert_backends_agree(empty_graph(0))

    def test_single_vertex(self):
        assert_backends_agree(Graph(1))

    def test_isolated_vertices_only(self):
        assert_backends_agree(empty_graph(7))

    def test_star(self):
        assert_backends_agree(star_graph(9))

    def test_complete_graph(self):
        assert_backends_agree(complete_graph(8))

    def test_cascade_graph_with_adversarial_initial_set(self):
        graph = cascade_swap_graph(10)
        assert_backends_agree(
            graph, initial=cascade_initial_independent_set(10)
        )

    def test_cascade_graph_with_round_cap(self):
        graph = cascade_swap_graph(8)
        assert_backends_agree(
            graph, initial=cascade_initial_independent_set(8), max_rounds=2
        )

    def test_id_scan_order(self):
        assert_backends_agree(erdos_renyi_gnm(60, 140, seed=2), order="id")

    def test_explicit_scan_order(self):
        graph = erdos_renyi_gnm(25, 60, seed=3)
        order = list(reversed(range(graph.num_vertices)))
        assert_backends_agree(graph, order=order)

    def test_solver_facade_backend_parity(self):
        graph = plrg_graph_with_vertex_count(150, 2.1, seed=4)
        for pipeline in PIPELINES:
            python_result = solve_mis(graph, pipeline=pipeline, backend="python")
            numpy_result = solve_mis(graph, pipeline=pipeline, backend="numpy")
            assert python_result.independent_set == numpy_result.independent_set
            assert python_result.rounds == numpy_result.rounds


class TestRandomizedParity:
    """Deterministic sweep: > 100 distinct random graphs, both backends."""

    @pytest.mark.parametrize("seed", range(60))
    def test_gnm_graphs(self, seed):
        n = 10 + (seed * 7) % 90
        m = (seed * 13) % (3 * n)
        graph = erdos_renyi_gnm(n, min(m, n * (n - 1) // 2), seed=seed)
        assert_backends_agree(graph, order="degree" if seed % 2 else "id")

    @pytest.mark.parametrize("seed", range(30))
    def test_plrg_graphs(self, seed):
        graph = plrg_graph_with_vertex_count(120 + 10 * (seed % 5), 1.8 + 0.1 * (seed % 7), seed=seed)
        assert_backends_agree(graph)

    @pytest.mark.parametrize("seed", range(15))
    def test_gnp_graphs_with_explicit_initial_set(self, seed):
        graph = erdos_renyi_gnp(50, 0.08, seed=seed)
        initial = greedy_mis(graph, order="id").independent_set
        assert_backends_agree(graph, initial=initial, max_rounds=3)


class TestHypothesisParity:
    @given(
        n=st.integers(min_value=0, max_value=60),
        density=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_backends_identical_on_gnp(self, n, density, seed):
        graph = erdos_renyi_gnp(n, density, seed=seed)
        assert_backends_agree(graph)

    @given(
        n=st.integers(min_value=2, max_value=50),
        extra=st.integers(min_value=0, max_value=80),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_backends_identical_on_gnm_id_order(self, n, extra, seed):
        m = min(extra, n * (n - 1) // 2)
        graph = erdos_renyi_gnm(n, m, seed=seed)
        assert_backends_agree(graph, order="id")
