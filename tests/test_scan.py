"""Unit tests for the scan-source protocol and the in-memory emulation."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graphs.generators import erdos_renyi_gnm, star_graph
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.io_stats import IOStats
from repro.storage.scan import AdjacencyScanSource, InMemoryAdjacencyScan, as_scan_source


class TestInMemoryAdjacencyScan:
    def test_degree_order_scans_small_degrees_first(self):
        graph = star_graph(5)
        source = InMemoryAdjacencyScan(graph, order="degree")
        degrees = [len(neighbors) for _, neighbors in source.scan()]
        assert degrees == sorted(degrees)

    def test_id_order(self):
        graph = erdos_renyi_gnm(20, 30, seed=0)
        source = InMemoryAdjacencyScan(graph, order="id")
        assert [v for v, _ in source.scan()] == list(range(20))

    def test_explicit_order(self):
        graph = erdos_renyi_gnm(5, 4, seed=0)
        source = InMemoryAdjacencyScan(graph, order=[4, 3, 2, 1, 0])
        assert source.scan_order() == [4, 3, 2, 1, 0]

    def test_invalid_orders_rejected(self):
        graph = erdos_renyi_gnm(5, 4, seed=0)
        with pytest.raises(StorageError):
            InMemoryAdjacencyScan(graph, order="random")
        with pytest.raises(StorageError):
            InMemoryAdjacencyScan(graph, order=[0, 1])

    def test_scan_and_lookup_accounting(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        source = InMemoryAdjacencyScan(graph)
        for _ in source.scan():
            pass
        source.neighbors(3)
        assert source.stats.sequential_scans == 1
        assert source.stats.random_vertex_lookups == 1

    def test_exposes_graph_dimensions(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        source = InMemoryAdjacencyScan(graph)
        assert source.num_vertices == 10
        assert source.num_edges == 15
        assert source.graph is graph
        assert source.degree(0) == graph.degree(0)

    def test_shared_stats(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        stats = IOStats()
        source = InMemoryAdjacencyScan(graph, stats=stats)
        for _ in source.scan():
            pass
        assert stats.sequential_scans == 1


class TestAsScanSource:
    def test_wraps_graph(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        source = as_scan_source(graph)
        assert isinstance(source, InMemoryAdjacencyScan)

    def test_passes_through_existing_source(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        source = InMemoryAdjacencyScan(graph)
        assert as_scan_source(source) is source

    def test_file_reader_satisfies_protocol(self):
        graph = erdos_renyi_gnm(10, 15, seed=1)
        reader = AdjacencyFileReader(write_adjacency_file(graph))
        assert isinstance(reader, AdjacencyScanSource)
        assert as_scan_source(reader) is reader

    def test_rejects_other_types(self):
        with pytest.raises(StorageError):
            as_scan_source([1, 2, 3])
