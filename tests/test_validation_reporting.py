"""Unit tests for the validation checks and the table formatting helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidIndependentSetError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.reporting import format_number, format_table, print_experiment_header
from repro.validation.checks import (
    assert_independent_set,
    find_violating_edge,
    is_independent_set,
    is_maximal_independent_set,
    uncovered_vertices,
)


class TestValidation:
    def test_empty_set_is_independent_but_not_maximal(self):
        graph = path_graph(4)
        assert is_independent_set(graph, set())
        assert not is_maximal_independent_set(graph, set())
        assert uncovered_vertices(graph, set()) == [0, 1, 2, 3]

    def test_violating_edge_found(self):
        graph = path_graph(4)
        assert find_violating_edge(graph, {1, 2}) == (1, 2)
        assert find_violating_edge(graph, {0, 2}) is None

    def test_assert_raises_with_edge_info(self):
        graph = cycle_graph(5)
        with pytest.raises(InvalidIndependentSetError) as excinfo:
            assert_independent_set(graph, {0, 1})
        assert excinfo.value.edge == (0, 1)

    def test_assert_passes_on_valid_set(self):
        graph = cycle_graph(6)
        assert_independent_set(graph, {0, 2, 4})

    def test_maximality_on_star(self):
        graph = star_graph(4)
        assert is_maximal_independent_set(graph, {0})
        assert is_maximal_independent_set(graph, {1, 2, 3, 4})
        assert not is_maximal_independent_set(graph, {1, 2})

    def test_figure1_example(self, paper_figure1_graph):
        graph = paper_figure1_graph
        # {v1, v2} (= {0, 1}) is maximal but not maximum; {v2, v3, v4, v5}
        # (= {1, 2, 3, 4}) is the maximum independent set.
        assert is_maximal_independent_set(graph, {0, 1})
        assert is_maximal_independent_set(graph, {1, 2, 3, 4})
        assert not is_independent_set(graph, {0, 2})


class TestReporting:
    def test_format_number_integers_use_separators(self):
        assert format_number(1234567) == "1,234,567"

    def test_format_number_floats_use_precision(self):
        assert format_number(0.98765, precision=3) == "0.988"
        assert format_number(float("nan")) == "N/A"

    def test_format_number_none_is_na(self):
        assert format_number(None) == "N/A"

    def test_format_number_strings_pass_through(self):
        assert format_number("Facebook") == "Facebook"

    def test_format_table_alignment(self):
        table = format_table(["name", "size"], [["greedy", 10], ["two-k", 12345]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert all(line.startswith("|") for line in lines)
        # Column widths are consistent.
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_with_title(self):
        table = format_table(["a"], [[1]], title="Table X")
        assert table.splitlines()[0] == "Table X"

    def test_print_experiment_header(self, capsys):
        print_experiment_header("Table 5", "IS sizes", "scale=0.001")
        captured = capsys.readouterr().out
        assert "Table 5: IS sizes" in captured
        assert "scale=0.001" in captured
