"""Property-based tests (hypothesis) for the core invariants.

The invariants checked here are the ones the paper's correctness argument
relies on:

* every solver output is an independent set;
* every semi-external solver output is *maximal*;
* swap passes never shrink the set they start from;
* the Algorithm-5 bound always dominates every heuristic (and the exact
  optimum on small instances);
* the storage layer round-trips arbitrary graphs bit-exactly.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.upper_bound import independence_upper_bound
from repro.baselines.dynamic_update import dynamic_update_mis
from repro.baselines.exact import independence_number
from repro.baselines.external_mis import external_maximal_is
from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.core.two_k_swap import two_k_swap
from repro.graphs.graph import Graph
from repro.storage.adjacency_file import AdjacencyFileReader, write_adjacency_file
from repro.storage.external_sort import external_sort_by_degree
from repro.validation.checks import is_independent_set, is_maximal_independent_set

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices: int = 40, max_edge_factor: int = 3):
    """Random simple graphs with up to ``max_vertices`` vertices."""

    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    max_edges = min(
        num_vertices * (num_vertices - 1) // 2, max_edge_factor * num_vertices
    )
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return Graph(num_vertices, edges)


@st.composite
def small_graphs(draw):
    """Graphs small enough for the exact branch-and-bound solver."""

    return draw(graphs(max_vertices=18, max_edge_factor=2))


class TestSolverInvariants:
    @_settings
    @given(graphs())
    def test_greedy_output_is_maximal_independent(self, graph):
        result = greedy_mis(graph)
        assert is_independent_set(graph, result.independent_set)
        assert is_maximal_independent_set(graph, result.independent_set)

    @_settings
    @given(graphs())
    def test_one_k_swap_output_is_maximal_independent(self, graph):
        result = one_k_swap(graph)
        assert is_maximal_independent_set(graph, result.independent_set)

    @_settings
    @given(graphs())
    def test_two_k_swap_output_is_maximal_independent(self, graph):
        result = two_k_swap(graph)
        assert is_maximal_independent_set(graph, result.independent_set)

    @_settings
    @given(graphs())
    def test_swaps_never_shrink_the_greedy_set(self, graph):
        greedy = greedy_mis(graph)
        assert one_k_swap(graph, initial=greedy).size >= greedy.size
        assert two_k_swap(graph, initial=greedy).size >= greedy.size

    @_settings
    @given(graphs())
    def test_baseline_comparators_are_maximal(self, graph):
        assert is_maximal_independent_set(graph, dynamic_update_mis(graph).independent_set)
        assert is_maximal_independent_set(graph, external_maximal_is(graph).independent_set)

    @_settings
    @given(small_graphs())
    def test_exact_dominates_every_heuristic(self, graph):
        optimum = independence_number(graph)
        assert optimum >= greedy_mis(graph).size
        assert optimum >= two_k_swap(graph).size
        assert optimum >= dynamic_update_mis(graph).size

    @_settings
    @given(small_graphs())
    def test_upper_bound_dominates_the_exact_optimum(self, graph):
        assert independence_upper_bound(graph) >= independence_number(graph)

    @_settings
    @given(graphs())
    def test_upper_bound_dominates_two_k_swap(self, graph):
        assert independence_upper_bound(graph) >= two_k_swap(graph).size


class TestStorageInvariants:
    @_settings
    @given(graphs())
    def test_adjacency_file_roundtrip(self, graph):
        reader = AdjacencyFileReader(write_adjacency_file(graph))
        assert reader.to_graph() == graph

    @_settings
    @given(graphs())
    def test_external_sort_preserves_graph_and_orders_degrees(self, graph):
        unsorted_reader = AdjacencyFileReader(
            write_adjacency_file(graph, order=range(graph.num_vertices))
        )
        result = external_sort_by_degree(unsorted_reader, memory_budget=512)
        degrees = [len(neighbors) for _, neighbors in result.reader.scan()]
        assert degrees == sorted(degrees)
        assert result.reader.to_graph() == graph

    @_settings
    @given(graphs())
    def test_greedy_identical_on_file_and_in_memory_sources(self, graph):
        from_memory = greedy_mis(graph)
        reader = AdjacencyFileReader(write_adjacency_file(graph))
        from_file = greedy_mis(reader)
        assert from_memory.independent_set == from_file.independent_set
