"""Integration tests that replay the paper's worked examples and claims.

* Example 1 / Figure 2 — swap-conflict resolution (covered in detail in
  ``test_one_k_swap.py``; here we check the state machinery end to end).
* Example 2 / Figure 4 — the 14-vertex one-k-swap walkthrough.
* Example 3 / Figure 7 — the two-k-swap walkthrough (see
  ``test_two_k_swap.py``).
* Figure 5 — the cascading worst case.
* Section 7.4 — the early-stop claim: the first rounds capture most of the
  swap gain.
"""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.core.one_k_swap import one_k_swap
from repro.core.two_k_swap import two_k_swap
from repro.graphs.cascade import (
    cascade_initial_independent_set,
    cascade_optimal_size,
    cascade_swap_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.plrg import plrg_graph_with_vertex_count
from repro.validation.checks import is_independent_set, is_maximal_independent_set


def figure4_graph() -> Graph:
    """A 14-vertex graph consistent with the Figure 4 walkthrough.

    The exact edge set of Figure 4 is only given pictorially; this fixture
    recreates the *situation* the example describes: an initial greedy set
    {v1, v4, v8, v12, v14} where (v2, v3, v1) and (v7, v9, v4) are 1-2 swap
    skeletons, v5/v6/v10 conflict with them, and the final set grows from
    five to seven vertices.
    """

    # 0-based ids: v1=0, v2=1, ..., v14=13.
    return Graph(
        14,
        [
            # v1 is exchangeable with v2 and v3.
            (0, 1), (0, 2),
            # v4 is exchangeable with v7 and v9.
            (3, 6), (3, 8),
            # v5 and v6 are adjacent to v4 and to swap winners -> conflicts.
            (3, 4), (3, 5), (4, 2), (5, 6),
            # v10 is adjacent to v8 and to a swap winner (v9) -> conflict.
            (7, 9), (8, 9),
            # v11 and v13 are covered by IS vertices v12 and v14.
            (11, 10), (13, 12),
            # extra edges keeping degrees varied, none between IS vertices.
            (1, 10), (6, 12),
        ],
    )


class TestFigure4Walkthrough:
    def test_initial_set_is_independent(self):
        graph = figure4_graph()
        initial = {0, 3, 7, 11, 13}
        assert is_independent_set(graph, initial)

    def test_one_k_swap_grows_the_set_by_two(self):
        graph = figure4_graph()
        initial = {0, 3, 7, 11, 13}
        result = one_k_swap(graph, initial=initial, order="id")
        # Two 1-2 swaps are available (around v1 and v4); the set grows from
        # 5 to 7 vertices, as in the paper's Example 2.
        assert result.size == 7
        assert is_maximal_independent_set(graph, result.independent_set)

    def test_swap_winners_replace_the_swapped_out_vertices(self):
        graph = figure4_graph()
        result = one_k_swap(graph, initial={0, 3, 7, 11, 13}, order="id")
        # v1 (0) and v4 (3) leave the set through 1-2 swaps; v2 and v3
        # (ids 1, 2) take v1's place.  The other IS vertices survive.
        assert 0 not in result.independent_set
        assert 3 not in result.independent_set
        assert {1, 2}.issubset(result.independent_set)
        assert {7, 11, 13}.issubset(result.independent_set)


class TestCascadeWorstCase:
    @pytest.mark.parametrize("num_triples", [2, 3, 5, 8])
    def test_rounds_grow_linearly_with_the_chain(self, num_triples):
        graph = cascade_swap_graph(num_triples)
        initial = cascade_initial_independent_set(num_triples)
        result = one_k_swap(graph, initial=initial, order="id")
        assert result.size == cascade_optimal_size(num_triples)
        assert result.num_rounds >= num_triples

    def test_two_k_swap_also_reaches_the_optimum(self):
        graph = cascade_swap_graph(4)
        initial = cascade_initial_independent_set(4)
        result = two_k_swap(graph, initial=initial, order="id")
        assert result.size == cascade_optimal_size(4)


class TestEarlyStopClaim:
    def test_first_three_rounds_capture_most_of_the_gain(self):
        # Section 7.4 / Table 8: >97% of the swap gain lands in rounds 1-3
        # on real graphs; power-law stand-ins behave the same way.
        graph = plrg_graph_with_vertex_count(4_000, 1.9, seed=13)
        result = one_k_swap(graph)
        if result.total_gain > 0:
            assert result.swap_completion_ratio(3) >= 0.9

    def test_round_count_stays_single_digit_on_power_law_graphs(self):
        # Table 7: between 2 and 9 rounds on every dataset.
        for beta, seed in ((1.9, 1), (2.1, 2), (2.4, 3)):
            graph = plrg_graph_with_vertex_count(3_000, beta, seed=seed)
            assert one_k_swap(graph).num_rounds <= 10
            assert two_k_swap(graph).num_rounds <= 10


class TestGreedyVersusSwapShapes:
    def test_table5_ordering_on_power_law_standins(self):
        # Two-k >= One-k >= Greedy >= Baseline (Table 5's qualitative shape).
        graph = plrg_graph_with_vertex_count(3_000, 2.0, seed=17)
        greedy = greedy_mis(graph)
        baseline = greedy_mis(graph, order="id")
        one_k = one_k_swap(graph, initial=greedy)
        two_k = two_k_swap(graph, initial=greedy)
        assert two_k.size >= one_k.size >= greedy.size
        assert greedy.size >= baseline.size
