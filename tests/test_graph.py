"""Unit tests for the in-memory Graph container and GraphBuilder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, VertexError
from repro.graphs.graph import Graph, GraphBuilder


class TestGraphConstruction:
    def test_empty_graph_has_no_vertices_or_edges(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0
        assert g.max_degree == 0

    def test_isolated_vertices_only(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.isolated_vertices() == [0, 1, 2, 3, 4]

    def test_simple_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert g.num_edges == 3
        assert sorted(g.neighbors(0)) == [1, 2]
        assert g.degree(1) == 2

    def test_duplicate_edges_are_removed(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_are_dropped(self):
        g = Graph(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(VertexError):
            Graph(3, [(0, 3)])
        with pytest.raises(VertexError):
            Graph(3, [(-1, 0)])

    def test_from_adjacency_symmetrises(self):
        g = Graph.from_adjacency([[1], [], [1]])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.num_edges == 2

    def test_from_edge_list_text_parses_comments(self):
        text = "# comment\n0 1\n% other comment\n1 2\n"
        g = Graph.from_edge_list_text(text)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edge_list_text_rejects_bad_lines(self):
        with pytest.raises(GraphError):
            Graph.from_edge_list_text("0\n")


class TestGraphQueries:
    def test_has_edge_both_directions(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_degrees_and_histogram(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees() == [3, 1, 1, 1]
        assert g.degree_histogram() == {3: 1, 1: 3}
        assert g.max_degree == 3
        assert g.average_degree == pytest.approx(1.5)

    def test_iter_edges_yields_each_edge_once(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        g = Graph(4, edges)
        assert sorted(g.iter_edges()) == sorted(edges)

    def test_iter_adjacency_covers_all_vertices(self):
        g = Graph(3, [(0, 1)])
        records = dict(g.iter_adjacency())
        assert set(records) == {0, 1, 2}
        assert records[2] == ()

    def test_vertex_bounds_checked(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(VertexError):
            g.neighbors(2)
        with pytest.raises(VertexError):
            g.degree(-1)

    def test_contains_and_len(self):
        g = Graph(3)
        assert 2 in g
        assert 3 not in g
        assert "x" not in g
        assert len(g) == 3

    def test_equality_and_repr(self):
        g1 = Graph(3, [(0, 1)])
        g2 = Graph(3, [(1, 0)])
        g3 = Graph(3, [(0, 2)])
        assert g1 == g2
        assert g1 != g3
        assert g1 != "not a graph"
        assert "num_vertices=3" in repr(g1)

    def test_complement_edges_count(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.complement_edges_count() == 4


class TestDerivedGraphs:
    def test_induced_subgraph_keeps_internal_edges(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_induced_subgraph_of_disconnected_vertices(self):
        g = Graph(5, [(0, 1), (1, 2)])
        sub, _ = g.induced_subgraph([0, 2, 4])
        assert sub.num_edges == 0

    def test_relabeled_preserves_structure(self):
        g = Graph(3, [(0, 1), (1, 2)])
        relabeled = g.relabeled([2, 1, 0])
        # old 2 -> new 0, old 1 -> new 1, old 0 -> new 2
        assert relabeled.has_edge(0, 1)
        assert relabeled.has_edge(1, 2)
        assert not relabeled.has_edge(0, 2)

    def test_relabeled_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled([0, 0, 1])

    def test_degree_ascending_order_sorts_by_degree_then_id(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        order = g.degree_ascending_order()
        assert order == [3, 1, 2, 0]


class TestGraphBuilder:
    def test_builder_grows_vertices_automatically(self):
        builder = GraphBuilder()
        builder.add_edge(0, 5)
        assert builder.num_vertices == 6
        g = builder.build()
        assert g.num_vertices == 6
        assert g.num_edges == 1

    def test_builder_ignores_self_loops(self):
        builder = GraphBuilder(3)
        builder.add_edge(1, 1)
        assert builder.num_pending_edges == 0
        assert builder.build().num_edges == 0

    def test_builder_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2), (2, 0)])
        assert builder.build().num_edges == 3

    def test_builder_add_vertex_returns_new_id(self):
        builder = GraphBuilder(2)
        assert builder.add_vertex() == 2
        assert builder.num_vertices == 3

    def test_builder_rejects_negative_ids(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.add_edge(-1, 0)

    def test_builder_rejects_negative_vertex_count(self):
        with pytest.raises(GraphError):
            GraphBuilder(-2)
